package datacutter

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dooc/internal/obs"
	"dooc/internal/simnet"
)

// instance is one running copy of a filter.
type instance struct {
	decl   *filterDecl
	copyID int
	node   int
}

// runtimeStream is the instantiated form of a streamDecl.
type runtimeStream struct {
	decl *streamDecl
	// queues: one element for Shared mode, one per consumer copy for
	// PerConsumer mode.
	queues []chan Buffer
	// producers still running; when it hits zero the queues close.
	producers int32
	// rr distributes plain Write calls over PerConsumer queues.
	rr uint64

	buffers int64
	bytes   int64

	// Registry series mirroring the atomics above; nil when Runtime.Obs is.
	obsBuffers *obs.Counter
	obsBytes   *obs.Counter
}

func (s *runtimeStream) close() {
	for _, q := range s.queues {
		close(q)
	}
}

// StreamStats reports traffic through one stream for a completed run.
type StreamStats struct {
	Stream  string
	Buffers int64
	Bytes   int64
}

// Runtime executes a Layout.
type Runtime struct {
	layout  *Layout
	cluster *simnet.Cluster
	streams map[string]*runtimeStream

	// Obs, when set before Run, receives per-stream traffic counters
	// (dooc_stream_buffers_total / dooc_stream_bytes_total, labeled by
	// stream name).
	Obs *obs.Registry
}

// NewRuntime prepares a runtime for the layout. cluster may be nil, in which
// case a single-node cluster is created. Filter placements must fit the
// cluster size.
func NewRuntime(layout *Layout, cluster *simnet.Cluster) (*Runtime, error) {
	if cluster == nil {
		var err error
		cluster, err = simnet.New(simnet.Config{Nodes: 1})
		if err != nil {
			return nil, err
		}
	}
	for _, name := range layout.order {
		d := layout.filters[name]
		for _, n := range d.nodes {
			if n < 0 || n >= cluster.Size() {
				return nil, fmt.Errorf("datacutter: filter %q placed on node %d, cluster has %d", name, n, cluster.Size())
			}
		}
	}
	return &Runtime{layout: layout, cluster: cluster}, nil
}

// Run instantiates every filter copy as a goroutine, wires the streams, and
// blocks until all filters return. It returns the joined non-nil filter
// errors, if any.
func (r *Runtime) Run() error {
	l := r.layout
	r.streams = make(map[string]*runtimeStream, len(l.streams))
	for _, name := range l.sorder {
		d := l.streams[name]
		rs := &runtimeStream{
			decl:       d,
			producers:  int32(l.filters[d.from].copies),
			obsBuffers: r.Obs.Counter("dooc_stream_buffers_total", "buffers written to the stream", obs.L("stream", name)),
			obsBytes:   r.Obs.Counter("dooc_stream_bytes_total", "payload bytes written to the stream", obs.L("stream", name)),
		}
		switch d.mode {
		case Shared:
			rs.queues = []chan Buffer{make(chan Buffer, d.depth)}
		case PerConsumer, Broadcast:
			nc := l.filters[d.to].copies
			rs.queues = make([]chan Buffer, nc)
			for i := range rs.queues {
				rs.queues[i] = make(chan Buffer, d.depth)
			}
		default:
			return fmt.Errorf("datacutter: stream %q has unknown mode %d", name, d.mode)
		}
		r.streams[name] = rs
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	for _, name := range l.order {
		d := l.filters[name]
		for c := 0; c < d.copies; c++ {
			inst := &instance{decl: d, copyID: c, node: d.nodes[c]}
			f := d.factory()
			ctx := &Context{rt: r, inst: inst}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer r.releaseProducer(inst)
				defer func() {
					if p := recover(); p != nil {
						mu.Lock()
						errs = append(errs, fmt.Errorf("datacutter: filter %s[%d] panicked: %v", inst.decl.name, inst.copyID, p))
						mu.Unlock()
					}
				}()
				if err := f.Run(ctx); err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("datacutter: filter %s[%d]: %w", inst.decl.name, inst.copyID, err))
					mu.Unlock()
				}
			}()
		}
	}
	wg.Wait()
	return errors.Join(errs...)
}

// releaseProducer decrements the producer count of every stream the instance
// feeds; the last producer out closes the stream.
func (r *Runtime) releaseProducer(inst *instance) {
	for _, name := range r.layout.sorder {
		rs := r.streams[name]
		if rs.decl.from != inst.decl.name {
			continue
		}
		if atomic.AddInt32(&rs.producers, -1) == 0 {
			rs.close()
		}
	}
}

// Stats returns per-stream traffic for the last Run.
func (r *Runtime) Stats() []StreamStats {
	out := make([]StreamStats, 0, len(r.streams))
	for _, name := range r.layout.sorder {
		rs := r.streams[name]
		out = append(out, StreamStats{
			Stream:  name,
			Buffers: atomic.LoadInt64(&rs.buffers),
			Bytes:   atomic.LoadInt64(&rs.bytes),
		})
	}
	return out
}

// Cluster returns the cluster the runtime executes on.
func (r *Runtime) Cluster() *simnet.Cluster { return r.cluster }

// Context is the API a running filter instance uses to interact with the
// middleware.
type Context struct {
	rt   *Runtime
	inst *instance
}

// Name returns the filter's declared name.
func (c *Context) Name() string { return c.inst.decl.name }

// CopyID returns this instance's index among the filter's copies.
func (c *Context) CopyID() int { return c.inst.copyID }

// Copies returns the filter's replication factor.
func (c *Context) Copies() int { return c.inst.decl.copies }

// NodeID returns the cluster node this instance is placed on.
func (c *Context) NodeID() int { return c.inst.node }

// stream looks up a runtime stream and validates the caller's role.
func (c *Context) stream(name string, producing bool) *runtimeStream {
	rs, ok := c.rt.streams[name]
	if !ok {
		panic(fmt.Sprintf("datacutter: %s[%d]: unknown stream %q", c.Name(), c.CopyID(), name))
	}
	if producing && rs.decl.from != c.inst.decl.name {
		panic(fmt.Sprintf("datacutter: %s[%d] is not the producer of stream %q", c.Name(), c.CopyID(), name))
	}
	if !producing && rs.decl.to != c.inst.decl.name {
		panic(fmt.Sprintf("datacutter: %s[%d] is not the consumer of stream %q", c.Name(), c.CopyID(), name))
	}
	return rs
}

// Write sends a buffer downstream. On a Shared stream it enqueues to the
// common queue; on a PerConsumer stream it round-robins across consumer
// copies; on a Broadcast stream every consumer copy receives it. Blocks
// when a destination queue is full (backpressure).
func (c *Context) Write(stream string, b Buffer) {
	rs := c.stream(stream, true)
	switch rs.decl.mode {
	case Shared:
		c.send(rs, rs.queues[0], b)
	case Broadcast:
		for _, q := range rs.queues {
			c.send(rs, q, b)
		}
	default:
		c.send(rs, rs.queues[int(atomic.AddUint64(&rs.rr, 1)-1)%len(rs.queues)], b)
	}
}

// WriteTo sends a buffer to a specific consumer copy of a PerConsumer
// stream. This is the unicast primitive request/reply protocols build on.
func (c *Context) WriteTo(stream string, consumerCopy int, b Buffer) {
	rs := c.stream(stream, true)
	if rs.decl.mode != PerConsumer {
		panic(fmt.Sprintf("datacutter: WriteTo on shared stream %q", stream))
	}
	if consumerCopy < 0 || consumerCopy >= len(rs.queues) {
		panic(fmt.Sprintf("datacutter: stream %q consumer copy %d out of [0,%d)", stream, consumerCopy, len(rs.queues)))
	}
	c.send(rs, rs.queues[consumerCopy], b)
}

func (c *Context) send(rs *runtimeStream, q chan Buffer, b Buffer) {
	b.from = c.inst
	atomic.AddInt64(&rs.buffers, 1)
	atomic.AddInt64(&rs.bytes, b.WireBytes())
	rs.obsBuffers.Inc()
	rs.obsBytes.Add(b.WireBytes())
	q <- b
}

// Read receives the next buffer from a stream. ok is false once the stream
// is drained and all its producers have finished. Cross-node transfers are
// accounted against the cluster's link statistics at consumption time.
func (c *Context) Read(stream string) (Buffer, bool) {
	rs := c.stream(stream, false)
	var q chan Buffer
	if rs.decl.mode == Shared {
		q = rs.queues[0]
	} else {
		q = rs.queues[c.inst.copyID]
	}
	b, ok := <-q
	if ok && b.from != nil && b.from.node != c.inst.node {
		// The payload traveled by reference; charge the wire cost (and any
		// configured throttling) to the link at consumption time.
		c.rt.cluster.Transfer(b.from.node, c.inst.node, b.WireBytes())
	}
	return b, ok
}
