// Package datacutter implements a filter-stream dataflow middleware modeled
// on DataCutter (Beynon et al., Parallel Computing 2001), the substrate the
// DOoC paper builds on.
//
// Computations are expressed as a set of components, called filters, that
// exchange data through logical streams. A stream is a uni-directional flow
// of untyped data buffers from producer filters to consumer filters. A
// Layout is the "filter ontology": it declares the filters, their placement
// on cluster nodes, their replication factors, and the streams connecting
// them. Stateless filters can be replicated ("transparent copies"): copies
// share the input stream demand-driven, which provides data parallelism
// without any change to filter code. Task parallelism and pipelined
// parallelism come from filters being independent goroutines connected by
// bounded channels (backpressure included).
package datacutter

import (
	"errors"
	"fmt"
)

// Buffer is the untyped unit of data flowing through a stream.
//
// Data carries serialized payloads; Value is an in-process fast path that
// avoids serialization for large numeric payloads (the middleware shares it
// by reference, so treat transferred values as immutable — the same
// discipline DOoC's storage layer enforces). Bytes is the accounted wire
// size; when zero it defaults to len(Data).
type Buffer struct {
	Tag   string
	Data  []byte
	Value any
	Bytes int64

	// from is the producing instance, set by the runtime for accounting.
	from *instance
}

// WireBytes returns the accounted size of the buffer.
func (b Buffer) WireBytes() int64 {
	if b.Bytes > 0 {
		return b.Bytes
	}
	return int64(len(b.Data))
}

// Filter is a dataflow component. Run is invoked once per instance
// (copy); it should loop reading input streams until they are drained,
// writing results to output streams, and then return. A non-nil error
// aborts the layout run.
type Filter interface {
	Run(ctx *Context) error
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc func(ctx *Context) error

// Run implements Filter.
func (f FilterFunc) Run(ctx *Context) error { return f(ctx) }

// StreamMode selects how buffers are distributed among consumer copies.
type StreamMode int

const (
	// Shared: all consumer copies read from one queue, demand-driven.
	// This is DataCutter's transparent-copy data parallelism.
	Shared StreamMode = iota
	// PerConsumer: each consumer copy has a private queue; producers address
	// a specific copy with WriteTo. Used for request/reply protocols such as
	// the storage layer's.
	PerConsumer
	// Broadcast: every consumer copy receives every buffer (replicated
	// delivery), e.g. for distributing an iterate to all workers.
	Broadcast
)

// filterDecl is a declared filter with its placement.
type filterDecl struct {
	name    string
	factory func() Filter
	copies  int
	nodes   []int // node of each copy; len == copies
}

// streamDecl is a declared stream.
type streamDecl struct {
	name     string
	from, to string
	mode     StreamMode
	depth    int
}

// Layout declares filters, their placement, and the streams connecting them.
type Layout struct {
	filters map[string]*filterDecl
	order   []string
	streams map[string]*streamDecl
	sorder  []string
}

// NewLayout returns an empty layout.
func NewLayout() *Layout {
	return &Layout{
		filters: make(map[string]*filterDecl),
		streams: make(map[string]*streamDecl),
	}
}

// FilterOption configures a declared filter.
type FilterOption func(*filterDecl)

// Copies sets the number of transparent copies (default 1).
func Copies(n int) FilterOption {
	return func(d *filterDecl) { d.copies = n }
}

// OnNodes pins each copy to a node; the slice is cycled if shorter than the
// copy count. Default: all copies on node 0.
func OnNodes(nodes ...int) FilterOption {
	return func(d *filterDecl) { d.nodes = nodes }
}

// AddFilter declares a filter. factory is called once per copy, so per-copy
// state is private by construction (the paper's "replicable if stateless"
// rule applies to state shared *across* copies).
func (l *Layout) AddFilter(name string, factory func() Filter, opts ...FilterOption) error {
	if name == "" {
		return errors.New("datacutter: empty filter name")
	}
	if _, dup := l.filters[name]; dup {
		return fmt.Errorf("datacutter: duplicate filter %q", name)
	}
	d := &filterDecl{name: name, factory: factory, copies: 1}
	for _, o := range opts {
		o(d)
	}
	if d.copies <= 0 {
		return fmt.Errorf("datacutter: filter %q needs at least one copy", name)
	}
	if len(d.nodes) == 0 {
		d.nodes = []int{0}
	}
	// Expand node assignment to one entry per copy.
	expanded := make([]int, d.copies)
	for i := range expanded {
		expanded[i] = d.nodes[i%len(d.nodes)]
	}
	d.nodes = expanded
	l.filters[name] = d
	l.order = append(l.order, name)
	return nil
}

// StreamOption configures a declared stream.
type StreamOption func(*streamDecl)

// Mode sets the distribution mode.
func Mode(m StreamMode) StreamOption {
	return func(d *streamDecl) { d.mode = m }
}

// Depth sets the queue depth (default 64).
func Depth(n int) StreamOption {
	return func(d *streamDecl) { d.depth = n }
}

// Connect declares a stream from filter `from` to filter `to`.
func (l *Layout) Connect(stream, from, to string, opts ...StreamOption) error {
	if _, dup := l.streams[stream]; dup {
		return fmt.Errorf("datacutter: duplicate stream %q", stream)
	}
	if _, ok := l.filters[from]; !ok {
		return fmt.Errorf("datacutter: stream %q: unknown producer filter %q", stream, from)
	}
	if _, ok := l.filters[to]; !ok {
		return fmt.Errorf("datacutter: stream %q: unknown consumer filter %q", stream, to)
	}
	d := &streamDecl{name: stream, from: from, to: to, mode: Shared, depth: 64}
	for _, o := range opts {
		o(d)
	}
	if d.depth <= 0 {
		return fmt.Errorf("datacutter: stream %q depth must be positive", stream)
	}
	l.streams[stream] = d
	l.sorder = append(l.sorder, stream)
	return nil
}

// MustAddFilter is AddFilter that panics on error (setup-time convenience).
func (l *Layout) MustAddFilter(name string, factory func() Filter, opts ...FilterOption) {
	if err := l.AddFilter(name, factory, opts...); err != nil {
		panic(err)
	}
}

// MustConnect is Connect that panics on error.
func (l *Layout) MustConnect(stream, from, to string, opts ...StreamOption) {
	if err := l.Connect(stream, from, to, opts...); err != nil {
		panic(err)
	}
}
