package storage

import (
	"errors"
	"sync"
	"testing"

	"dooc/internal/obs"
)

// writeArray creates, fills, and optionally flushes an n-block array.
func writeArray(t *testing.T, s *Store, name string, blocks int, blockSize int64, flush bool) {
	t.Helper()
	if err := s.Create(name, int64(blocks)*blockSize, blockSize); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < blocks; i++ {
		w, err := s.RequestBlock(name, i, PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		for j := range w.Data {
			w.Data[j] = byte(i)
		}
		w.Release()
	}
	if flush {
		if err := s.Flush(name); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQuotaMemEviction(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{MemoryBudget: 1 << 20, IOWorkers: 2, Seed: 1, ScratchDir: t.TempDir(), Obs: reg}
	s, err := NewLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const blockSize = 1 << 10
	// Group budget: 4 blocks. Flush makes the blocks evictable.
	s.SetQuota("job1:", 4*blockSize, 0)
	writeArray(t, s, "job1:a", 8, blockSize, true)

	qs, ok := s.Quota("job1:")
	if !ok {
		t.Fatal("quota group missing")
	}
	if qs.MemUsed > qs.MemBudget {
		t.Fatalf("group mem %d exceeds budget %d", qs.MemUsed, qs.MemBudget)
	}
	// Writing the array took 8 block allocations against a 4-block budget;
	// once blocks became durable they were reclaimable, so the group must
	// have evicted at least once — and only its own blocks.
	if qs.Evictions == 0 {
		t.Fatal("no quota evictions recorded")
	}
	st := s.Stats()
	if st.QuotaEvictions != qs.Evictions {
		t.Fatalf("Stats.QuotaEvictions = %d, group says %d", st.QuotaEvictions, qs.Evictions)
	}
	if st.QuotaEvictions > st.Evictions {
		t.Fatalf("quota evictions %d exceed total evictions %d", st.QuotaEvictions, st.Evictions)
	}
	got := reg.SumWhere("dooc_storage_quota_evictions_total", "group", "job1:")
	if got != qs.Evictions {
		t.Fatalf("metric says %v quota evictions, group says %d", got, qs.Evictions)
	}

	// An unquota'd array is untouched by group pressure accounting.
	writeArray(t, s, "free", 2, blockSize, false)
	qs2, _ := s.Quota("job1:")
	if qs2.MemUsed > qs2.MemBudget {
		t.Fatalf("group mem grew past budget: %d", qs2.MemUsed)
	}
}

func TestQuotaScratchCeiling(t *testing.T) {
	cfg := Config{MemoryBudget: 1 << 20, IOWorkers: 2, Seed: 1, ScratchDir: t.TempDir()}
	s, err := NewLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const blockSize = 1 << 10
	s.SetQuota("job2:", 0, 3*blockSize)
	writeArray(t, s, "job2:ok", 2, blockSize, true) // 2 KiB used, under the 3 KiB ceiling

	qs, _ := s.Quota("job2:")
	if qs.ScratchUsed != 2*blockSize {
		t.Fatalf("scratch used = %d, want %d", qs.ScratchUsed, 2*blockSize)
	}

	// The next flush would need 2 more blocks: 2+2 > 3 → typed rejection.
	writeArray(t, s, "job2:big", 2, blockSize, false)
	err = s.Flush("job2:big")
	if !errors.Is(err, ErrScratchQuota) {
		t.Fatalf("flush err = %v, want ErrScratchQuota", err)
	}
	// Nothing was written: accounting is unchanged.
	if qs2, _ := s.Quota("job2:"); qs2.ScratchUsed != 2*blockSize {
		t.Fatalf("failed flush changed scratch accounting: %d", qs2.ScratchUsed)
	}

	// Deleting the flushed array returns its bytes; the flush now fits.
	if err := s.Delete("job2:ok"); err != nil {
		t.Fatal(err)
	}
	if qs3, _ := s.Quota("job2:"); qs3.ScratchUsed != 0 {
		t.Fatalf("delete did not return scratch bytes: %d", qs3.ScratchUsed)
	}
	if err := s.Flush("job2:big"); err != nil {
		t.Fatal(err)
	}
}

func TestQuotaPrefixResolution(t *testing.T) {
	s := newTestStore(t, 1<<20, false)
	s.SetQuota("job", 1<<20, 0)
	s.SetQuota("job3:", 1<<20, 0)
	writeArray(t, s, "job3:x", 1, 64, false)
	writeArray(t, s, "job9:x", 1, 64, false)

	long, _ := s.Quota("job3:")
	short, _ := s.Quota("job")
	if long.MemUsed != 64 {
		t.Fatalf("longest-prefix group holds %d bytes, want 64", long.MemUsed)
	}
	if short.MemUsed != 64 {
		t.Fatalf("short-prefix group holds %d bytes, want 64 (job9:x only)", short.MemUsed)
	}

	// Clearing the long group folds its arrays into the short one.
	s.ClearQuota("job3:")
	if _, ok := s.Quota("job3:"); ok {
		t.Fatal("cleared group still present")
	}
	short2, _ := s.Quota("job")
	if short2.MemUsed != 128 {
		t.Fatalf("after clear, short group holds %d bytes, want 128", short2.MemUsed)
	}
}

// TestQuotaSetAfterCreate checks arrays created before SetQuota join the
// group and the budget is enforced immediately.
func TestQuotaSetAfterCreate(t *testing.T) {
	s := newTestStore(t, 1<<20, true)
	const blockSize = 1 << 10
	writeArray(t, s, "late:a", 6, blockSize, true)
	s.SetQuota("late:", 2*blockSize, 0)
	qs, ok := s.Quota("late:")
	if !ok {
		t.Fatal("group missing")
	}
	if qs.MemUsed > qs.MemBudget {
		t.Fatalf("budget not enforced on attach: %d > %d", qs.MemUsed, qs.MemBudget)
	}
	if qs.ScratchUsed != 6*blockSize {
		t.Fatalf("scratch attribution not carried on attach: %d", qs.ScratchUsed)
	}
}

// TestAbandonRacesReclaim drives concurrent write-lease Abandon against
// eviction pressure and explicit Evict — the cancellation path the job
// manager relies on. Run under -race; the invariant is no panic, no lost
// accounting, and the store stays usable.
func TestAbandonRacesReclaim(t *testing.T) {
	const blockSize = 1 << 9
	cfg := Config{MemoryBudget: 4 * blockSize, IOWorkers: 2, Seed: 1, ScratchDir: t.TempDir()}
	s, err := NewLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const blocks = 16
	if err := s.Create("r", blocks*blockSize, blockSize); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < blocks; i++ {
				l, err := s.RequestBlock("r", i, PermWrite)
				if err != nil {
					continue // another goroutine won the write
				}
				if (i+g)%2 == 0 {
					l.Abandon()
					continue
				}
				for j := range l.Data {
					l.Data[j] = byte(i)
				}
				l.Release()
			}
		}(g)
	}
	// Concurrent evict pressure on whatever is already durable.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 8; round++ {
			_ = s.Flush("r")
			for i := 0; i < blocks; i++ {
				_ = s.Evict("r", i)
			}
		}
	}()
	wg.Wait()

	// Every block is still writable-or-written: fill in the gaps, then read
	// all blocks back.
	for i := 0; i < blocks; i++ {
		if l, err := s.RequestBlock("r", i, PermWrite); err == nil {
			for j := range l.Data {
				l.Data[j] = byte(i)
			}
			l.Release()
		}
	}
	for i := 0; i < blocks; i++ {
		l, err := s.RequestBlock("r", i, PermRead)
		if err != nil {
			t.Fatalf("block %d unreadable after races: %v", i, err)
		}
		if l.Data[0] != byte(i) {
			t.Fatalf("block %d = %d, want %d", i, l.Data[0], i)
		}
		l.Release()
	}
	if err := s.Delete("r"); err != nil {
		t.Fatalf("delete after races: %v", err)
	}
}
