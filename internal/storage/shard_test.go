package storage

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeShard is an in-memory ShardBackend: a map standing in for the
// cluster ring, with switchable durability verdicts and a total-miss mode
// to exercise the fallback path.
type fakeShard struct {
	mu          sync.Mutex
	durable     bool
	lost        bool // FetchBlock misses everything (owners died)
	blocks      map[string][]byte
	invalidated []string
}

func newFakeShard(durable bool) *fakeShard {
	return &fakeShard{durable: durable, blocks: make(map[string][]byte)}
}

func shardKey(array string, block int) string { return fmt.Sprintf("%s/%d", array, block) }

func (f *fakeShard) FetchBlock(array string, block int) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.lost {
		return nil, false
	}
	data, ok := f.blocks[shardKey(array, block)]
	return data, ok
}

func (f *fakeShard) PushBlock(array string, block int, data []byte) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.blocks[shardKey(array, block)] = append([]byte(nil), data...)
	return f.durable
}

func (f *fakeShard) InvalidateArray(array string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k := range f.blocks {
		if len(k) > len(array) && k[:len(array)] == array && k[len(array)] == '/' {
			delete(f.blocks, k)
		}
	}
	f.invalidated = append(f.invalidated, array)
}

func (f *fakeShard) setLost(v bool) {
	f.mu.Lock()
	f.lost = v
	f.mu.Unlock()
}

func (f *fakeShard) held() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.blocks)
}

// waitShard polls the store's stats until cond holds or the deadline
// passes (shard pushes and fetches complete asynchronously).
func waitShard(t *testing.T, s *Store, what string, cond func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s; stats %+v", what, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func writeShardArray(t *testing.T, s *Store, name string, blocks int, blockSize int64) [][]byte {
	t.Helper()
	if err := s.Create(name, int64(blocks)*blockSize, blockSize); err != nil {
		t.Fatalf("create: %v", err)
	}
	payload := make([][]byte, blocks)
	for b := 0; b < blocks; b++ {
		lease, err := s.Request(name, int64(b)*blockSize, int64(b+1)*blockSize, PermWrite)
		if err != nil {
			t.Fatalf("write lease block %d: %v", b, err)
		}
		for i := range lease.Data {
			lease.Data[i] = byte(b + i + 1)
		}
		payload[b] = append([]byte(nil), lease.Data...)
		lease.Release()
	}
	return payload
}

// TestShardPushOnWrite: every fully written block is pushed to the tier
// in the background.
func TestShardPushOnWrite(t *testing.T) {
	shard := newFakeShard(false)
	s, err := NewLocal(Config{MemoryBudget: 1 << 20, Shard: shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	writeShardArray(t, s, "a", 4, 1024)
	st := waitShard(t, s, "4 pushes", func(st Stats) bool { return st.ShardPushes == 4 })
	deadline := time.Now().Add(5 * time.Second)
	for shard.held() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("shard holds %d blocks, want 4", shard.held())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.ShardDurablePushes != 0 {
		t.Fatalf("non-durable backend reported %d durable pushes", st.ShardDurablePushes)
	}
	if st.BytesPushedShard != 4*1024 {
		t.Fatalf("BytesPushedShard = %d, want %d", st.BytesPushedShard, 4*1024)
	}
}

// TestShardDurableEvictRefetch: durably pushed blocks are evicted without
// a disk spill (no scratch dir at all) and refetched from the tier with
// the original bytes.
func TestShardDurableEvictRefetch(t *testing.T) {
	shard := newFakeShard(true)
	const blockSize = 1024
	// Budget for two blocks; writing four forces evictions, which are
	// only legal because the shard pushes are durable.
	s, err := NewLocal(Config{MemoryBudget: 2 * blockSize, Shard: shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	payload := writeShardArray(t, s, "a", 4, blockSize)
	waitShard(t, s, "durable pushes", func(st Stats) bool { return st.ShardDurablePushes == 4 })
	waitShard(t, s, "evictions", func(st Stats) bool { return st.Evictions > 0 })
	for b := 0; b < 4; b++ {
		lease, err := s.Request("a", int64(b)*blockSize, int64(b+1)*blockSize, PermRead)
		if err != nil {
			t.Fatalf("read block %d: %v", b, err)
		}
		if !bytes.Equal(lease.Data, payload[b]) {
			lease.Release()
			t.Fatalf("block %d bytes differ after shard refetch", b)
		}
		lease.Release()
	}
	st := s.Stats()
	if st.ShardFetches == 0 {
		t.Fatalf("no shard fetches despite evictions; stats %+v", st)
	}
	if st.BytesFetchedShard != st.ShardFetches*blockSize {
		t.Fatalf("BytesFetchedShard = %d, want %d", st.BytesFetchedShard, st.ShardFetches*blockSize)
	}
}

// TestShardFallbackOnLoss: when the tier loses a block (owners died), the
// fetch falls back cleanly and the shard marking is cleared.
func TestShardFallbackOnLoss(t *testing.T) {
	shard := newFakeShard(true)
	const blockSize = 1024
	s, err := NewLocal(Config{MemoryBudget: 2 * blockSize, Shard: shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	writeShardArray(t, s, "a", 4, blockSize)
	waitShard(t, s, "durable pushes", func(st Stats) bool { return st.ShardDurablePushes == 4 })
	waitShard(t, s, "evictions", func(st Stats) bool { return st.Evictions > 0 })
	shard.setLost(true)
	// Prefetch drives the fetch without a blocking waiter, so the miss
	// surfaces as a counted fallback instead of a parked read.
	s.Prefetch("a", 0, 4*blockSize)
	waitShard(t, s, "a fallback", func(st Stats) bool { return st.ShardFallbacks > 0 })
}

// TestShardInvalidateOnDelete: deleting an array drops it from the tier.
func TestShardInvalidateOnDelete(t *testing.T) {
	shard := newFakeShard(false)
	s, err := NewLocal(Config{MemoryBudget: 1 << 20, Shard: shard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	writeShardArray(t, s, "a", 2, 512)
	deadline := time.Now().Add(5 * time.Second)
	for shard.held() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("shard holds %d blocks, want 2", shard.held())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if shard.held() != 0 {
		t.Fatalf("shard still holds %d blocks after delete", shard.held())
	}
	shard.mu.Lock()
	inv := len(shard.invalidated)
	shard.mu.Unlock()
	if inv != 1 {
		t.Fatalf("InvalidateArray called %d times, want 1", inv)
	}
}
