package storage

import (
	"fmt"
	"sync"
	"time"
)

// This file is the blocking client API wrapped around the storage filter's
// asynchronous message protocol. Any goroutine may call these methods.

// Create declares a new immutable array across the whole storage network.
// Every byte of the array starts unwritten.
func (s *Store) Create(name string, size, blockSize int64) error {
	// One shared ack channel, sized for every peer, replaces a channel per
	// peer: the fan-in order does not matter, only that all acks arrive.
	ack := ackChan(len(s.peers))
	for _, p := range s.peers {
		m := createPool.Get().(*msgCreateArr)
		m.info = ArrayInfo{Name: name, Size: size, BlockSize: blockSize}
		m.ack = ack
		p.post(m)
	}
	return collectAcks(ack, len(s.peers))
}

// Delete removes an array from every node. It fails if any node still holds
// leases on it.
func (s *Store) Delete(name string) error {
	ack := ackChan(len(s.peers))
	for _, p := range s.peers {
		m := deletePool.Get().(*msgDeleteArr)
		m.name = name
		m.ack = ack
		p.post(m)
	}
	err := collectAcks(ack, len(s.peers))
	if err == nil && s.cfg.Shard != nil {
		// Drop the array from the cluster tier exactly once, from the
		// initiating store; peers that miss the delete serve at most
		// stale-epoch bytes, which readers reject.
		s.cfg.Shard.InvalidateArray(name)
	}
	return err
}

// ackPool recycles broadcast ack channels. A channel is returned only after
// every expected ack has been received, so a pooled channel is always empty.
var ackPool sync.Pool

func ackChan(n int) chan error {
	if c, _ := ackPool.Get().(chan error); c != nil && cap(c) >= n {
		return c
	}
	return make(chan error, n)
}

func collectAcks(ack chan error, n int) error {
	var first error
	for i := 0; i < n; i++ {
		if err := <-ack; err != nil && first == nil {
			first = err
		}
	}
	ackPool.Put(ack)
	return first
}

// Request leases the interval [lo, hi) of an array with the given
// permission, blocking until it can be granted. Read leases block until the
// interval has been written and is resident; write leases fail on any
// overlap with already-written data (immutability).
func (s *Store) Request(array string, lo, hi int64, perm Perm) (*Lease, error) {
	c := reqPool.Get().(*cmdRequest)
	c.array, c.lo, c.hi, c.perm = array, lo, hi, perm
	return s.request(c)
}

// RequestBlock leases a whole block by index. The span is resolved inside
// the storage loop, so no metadata round-trip precedes the request.
func (s *Store) RequestBlock(array string, block int, perm Perm) (*Lease, error) {
	c := reqPool.Get().(*cmdRequest)
	c.array, c.block, c.byBlock, c.perm = array, block, true, perm
	return s.request(c)
}

// request posts a pooled command and waits for its single reply. The loop
// returns the command struct to its pool; the reply channel comes back here
// once the reply has been received.
func (s *Store) request(c *cmdRequest) (*Lease, error) {
	reply := leaseReplyPool.Get().(chan leaseResult)
	c.reply = reply
	// The loop recycles c before the reply lands; capture the label first.
	var array string
	if s.cfg.Trace.Enabled() {
		array = c.array
	}
	start := time.Now()
	s.post(c)
	res := <-reply
	leaseReplyPool.Put(reply)
	s.metrics.leaseWait.Observe(time.Since(start).Seconds())
	if array != "" {
		s.traceGrant(array, start, time.Now(), res.err)
	}
	return res.lease, res.err
}

// Prefetch asynchronously pulls the blocks covering [lo, hi) toward this
// node's memory. It never blocks and never fails; a later Request reaps the
// benefit.
func (s *Store) Prefetch(array string, lo, hi int64) {
	c := prefetchPool.Get().(*cmdPrefetch)
	c.array, c.lo, c.hi = array, lo, hi
	s.post(c)
}

// PrefetchBlock prefetches one block by index.
func (s *Store) PrefetchBlock(array string, block int) {
	c := prefetchPool.Get().(*cmdPrefetch)
	c.array, c.block, c.byBlock = array, block, true
	s.post(c)
}

// Flush writes this node's fully-written, not-yet-persisted resident blocks
// of the array to the scratch directory (the paper's explicit write-back),
// blocking until the I/O filters finish.
func (s *Store) Flush(array string) error {
	reply := make(chan error, 1)
	s.post(cmdFlush{array: array, reply: reply})
	return <-reply
}

// Evict explicitly drops a resident block from this node's memory — the
// paper's programmer-driven memory management. It fails if the block is
// leased, has I/O in flight, or is the only copy anywhere (flush first).
// Evicting a non-resident block succeeds (idempotent).
func (s *Store) Evict(array string, block int) error {
	reply := make(chan error, 1)
	s.post(cmdEvict{array: array, block: block, reply: reply})
	return <-reply
}

// Map returns the residency snapshot local schedulers poll.
func (s *Store) Map() ResidencyMap {
	reply, _ := mapReplyPool.Get().(chan ResidencyMap)
	if reply == nil {
		reply = make(chan ResidencyMap, 1)
	}
	s.post(cmdMap{reply: reply})
	rm := <-reply
	mapReplyPool.Put(reply)
	return rm
}

var mapReplyPool sync.Pool

// Stats returns cumulative counters.
func (s *Store) Stats() Stats {
	reply := make(chan Stats, 1)
	s.post(cmdStats{reply: reply})
	return <-reply
}

// Info returns the metadata of an array.
func (s *Store) Info(array string) (ArrayInfo, error) {
	reply := make(chan infoResult, 1)
	s.post(cmdInfo{array: array, reply: reply})
	res := <-reply
	return res.info, res.err
}

// Close shuts the store down. Outstanding requests fail with ErrClosed.
func (s *Store) Close() {
	s.inbox.close()
	<-s.done
	s.io.stop()
}

// ---- typed helpers ----

// PutFloat64s encodes vals into a write lease's data (little endian).
// The lease must span exactly 8*len(vals) bytes.
func PutFloat64s(l *Lease, vals []float64) {
	if len(l.Data) != 8*len(vals) {
		panic(fmt.Sprintf("storage: PutFloat64s: lease %d bytes, %d values", len(l.Data), len(vals)))
	}
	EncodeFloat64s(l.Data, vals)
}

// GetFloat64s decodes a lease's data as float64s.
func GetFloat64s(l *Lease) []float64 { return DecodeFloat64s(l.Data) }

// DecodeFloat64s decodes little-endian float64s from raw bytes.
func DecodeFloat64s(data []byte) []float64 {
	if len(data)%8 != 0 {
		panic(fmt.Sprintf("storage: DecodeFloat64s: %d bytes not a multiple of 8", len(data)))
	}
	out := make([]float64, len(data)/8)
	DecodeFloat64sInto(out, data)
	return out
}

// WriteArray is a convenience that creates an array (blockSize == len(data)
// if bs <= 0), writes it block by block, and releases.
func (s *Store) WriteArray(name string, data []byte, blockSize int64) error {
	if blockSize <= 0 {
		blockSize = int64(len(data))
	}
	if err := s.Create(name, int64(len(data)), blockSize); err != nil {
		return err
	}
	info := ArrayInfo{Name: name, Size: int64(len(data)), BlockSize: blockSize}
	for b := 0; b < info.NumBlocks(); b++ {
		bs := info.BlockSpan(b)
		l, err := s.Request(name, bs.Lo, bs.Hi, PermWrite)
		if err != nil {
			return err
		}
		copy(l.Data, data[bs.Lo:bs.Hi])
		l.Release()
	}
	return nil
}

// ReadAll is a convenience that reads an entire array into a fresh slice.
// The result is sized up front and each block is copied straight into its
// interval — one allocation, one copy per block.
func (s *Store) ReadAll(name string) ([]byte, error) {
	info, err := s.Info(name)
	if err != nil {
		return nil, err
	}
	out := make([]byte, info.Size)
	for b := 0; b < info.NumBlocks(); b++ {
		bs := info.BlockSpan(b)
		lease, err := s.Request(name, bs.Lo, bs.Hi, PermRead)
		if err != nil {
			return nil, err
		}
		copy(out[bs.Lo:bs.Hi], lease.Data)
		lease.Release()
	}
	return out, nil
}
