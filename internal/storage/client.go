package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// This file is the blocking client API wrapped around the storage filter's
// asynchronous message protocol. Any goroutine may call these methods.

// Create declares a new immutable array across the whole storage network.
// Every byte of the array starts unwritten.
func (s *Store) Create(name string, size, blockSize int64) error {
	acks := make([]chan error, len(s.peers))
	for i, p := range s.peers {
		acks[i] = make(chan error, 1)
		p.post(msgCreateArr{info: ArrayInfo{Name: name, Size: size, BlockSize: blockSize}, ack: acks[i]})
	}
	var first error
	for _, ack := range acks {
		if err := <-ack; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Delete removes an array from every node. It fails if any node still holds
// leases on it.
func (s *Store) Delete(name string) error {
	acks := make([]chan error, len(s.peers))
	for i, p := range s.peers {
		acks[i] = make(chan error, 1)
		p.post(msgDeleteArr{name: name, ack: acks[i]})
	}
	var first error
	for _, ack := range acks {
		if err := <-ack; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Request leases the interval [lo, hi) of an array with the given
// permission, blocking until it can be granted. Read leases block until the
// interval has been written and is resident; write leases fail on any
// overlap with already-written data (immutability).
func (s *Store) Request(array string, lo, hi int64, perm Perm) (*Lease, error) {
	reply := make(chan leaseResult, 1)
	start := time.Now()
	s.post(cmdRequest{array: array, lo: lo, hi: hi, perm: perm, reply: reply})
	res := <-reply
	s.metrics.leaseWait.Observe(time.Since(start).Seconds())
	return res.lease, res.err
}

// RequestBlock leases a whole block by index.
func (s *Store) RequestBlock(array string, block int, perm Perm) (*Lease, error) {
	info, err := s.Info(array)
	if err != nil {
		return nil, err
	}
	bs := info.BlockSpan(block)
	if bs.empty() {
		return nil, fmt.Errorf("storage: block %d out of array %q", block, array)
	}
	return s.Request(array, bs.Lo, bs.Hi, perm)
}

// Prefetch asynchronously pulls the blocks covering [lo, hi) toward this
// node's memory. It never blocks and never fails; a later Request reaps the
// benefit.
func (s *Store) Prefetch(array string, lo, hi int64) {
	s.post(cmdPrefetch{array: array, lo: lo, hi: hi})
}

// PrefetchBlock prefetches one block by index.
func (s *Store) PrefetchBlock(array string, block int) {
	if info, err := s.Info(array); err == nil {
		bs := info.BlockSpan(block)
		if !bs.empty() {
			s.Prefetch(array, bs.Lo, bs.Hi)
		}
	}
}

// Flush writes this node's fully-written, not-yet-persisted resident blocks
// of the array to the scratch directory (the paper's explicit write-back),
// blocking until the I/O filters finish.
func (s *Store) Flush(array string) error {
	reply := make(chan error, 1)
	s.post(cmdFlush{array: array, reply: reply})
	return <-reply
}

// Evict explicitly drops a resident block from this node's memory — the
// paper's programmer-driven memory management. It fails if the block is
// leased, has I/O in flight, or is the only copy anywhere (flush first).
// Evicting a non-resident block succeeds (idempotent).
func (s *Store) Evict(array string, block int) error {
	reply := make(chan error, 1)
	s.post(cmdEvict{array: array, block: block, reply: reply})
	return <-reply
}

// Map returns the residency snapshot local schedulers poll.
func (s *Store) Map() ResidencyMap {
	reply := make(chan ResidencyMap, 1)
	s.post(cmdMap{reply: reply})
	return <-reply
}

// Stats returns cumulative counters.
func (s *Store) Stats() Stats {
	reply := make(chan Stats, 1)
	s.post(cmdStats{reply: reply})
	return <-reply
}

// Info returns the metadata of an array.
func (s *Store) Info(array string) (ArrayInfo, error) {
	reply := make(chan infoResult, 1)
	s.post(cmdInfo{array: array, reply: reply})
	res := <-reply
	return res.info, res.err
}

// Close shuts the store down. Outstanding requests fail with ErrClosed.
func (s *Store) Close() {
	s.inbox.close()
	<-s.done
	s.io.stop()
}

// ---- typed helpers ----

// PutFloat64s encodes vals into a write lease's data (little endian).
// The lease must span exactly 8*len(vals) bytes.
func PutFloat64s(l *Lease, vals []float64) {
	if len(l.Data) != 8*len(vals) {
		panic(fmt.Sprintf("storage: PutFloat64s: lease %d bytes, %d values", len(l.Data), len(vals)))
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(l.Data[8*i:], math.Float64bits(v))
	}
}

// GetFloat64s decodes a lease's data as float64s.
func GetFloat64s(l *Lease) []float64 { return DecodeFloat64s(l.Data) }

// DecodeFloat64s decodes little-endian float64s from raw bytes.
func DecodeFloat64s(data []byte) []float64 {
	if len(data)%8 != 0 {
		panic(fmt.Sprintf("storage: DecodeFloat64s: %d bytes not a multiple of 8", len(data)))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out
}

// WriteArray is a convenience that creates an array (blockSize == len(data)
// if bs <= 0), writes it block by block, and releases.
func (s *Store) WriteArray(name string, data []byte, blockSize int64) error {
	if blockSize <= 0 {
		blockSize = int64(len(data))
	}
	if err := s.Create(name, int64(len(data)), blockSize); err != nil {
		return err
	}
	info := ArrayInfo{Name: name, Size: int64(len(data)), BlockSize: blockSize}
	for b := 0; b < info.NumBlocks(); b++ {
		bs := info.BlockSpan(b)
		l, err := s.Request(name, bs.Lo, bs.Hi, PermWrite)
		if err != nil {
			return err
		}
		copy(l.Data, data[bs.Lo:bs.Hi])
		l.Release()
	}
	return nil
}

// ReadAll is a convenience that reads an entire array into a fresh slice.
func (s *Store) ReadAll(name string) ([]byte, error) {
	info, err := s.Info(name)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, info.Size)
	for b := 0; b < info.NumBlocks(); b++ {
		lease, err := s.RequestBlock(name, b, PermRead)
		if err != nil {
			return nil, err
		}
		out = append(out, lease.Data...)
		lease.Release()
	}
	return out, nil
}
