package storage

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dooc/internal/obs"
)

// TestStorageSpansEmitted drives a store through spills, evictions, and
// reloads with a tracer attached and asserts the storage band appears in
// the Chrome trace: named lanes, load/spill spans on the I/O-worker lanes,
// grant spans on the lease lane, and evict instants on the loop lane —
// all in a blob obs.ValidateTrace accepts.
func TestStorageSpansEmitted(t *testing.T) {
	tracer := obs.NewTracer()
	s, err := NewLocal(Config{
		MemoryBudget: 2048, // two 1 KiB blocks: reads past that must evict
		ScratchDir:   t.TempDir(),
		IOWorkers:    2,
		Seed:         1,
		Trace:        tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	const blocks, blockSize = 6, 1024
	if err := s.Create("a", blocks*blockSize, blockSize); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < blocks; i++ {
		w, err := s.Request("a", int64(i*blockSize), int64((i+1)*blockSize), PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		for j := range w.Data {
			w.Data[j] = byte(i)
		}
		w.Release()
	}
	if err := s.Flush("a"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < blocks; i++ {
		r, err := s.Request("a", int64(i*blockSize), int64((i+1)*blockSize), PermRead)
		if err != nil {
			t.Fatal(err)
		}
		r.Release()
	}

	var blob bytes.Buffer
	if err := tracer.WriteJSON(&blob); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTrace(blob.Bytes()); err != nil {
		t.Fatalf("storage trace invalid: %v", err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Cat  string         `json:"cat"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	lanes := map[string]bool{}
	for _, ev := range file.TraceEvents {
		if ev.Ph == "M" {
			if name, _ := ev.Args["name"].(string); name != "" {
				lanes[name] = true
			}
			continue
		}
		if ev.Cat != traceCatStorage {
			continue
		}
		switch {
		case strings.HasPrefix(ev.Name, "spill "):
			counts["spill"]++
			if ev.Tid < traceTidIOBase {
				t.Fatalf("spill span on tid %d, want an I/O lane >= %d", ev.Tid, traceTidIOBase)
			}
		case strings.HasPrefix(ev.Name, "load "):
			counts["load"]++
			if ev.Tid < traceTidIOBase {
				t.Fatalf("load span on tid %d, want an I/O lane >= %d", ev.Tid, traceTidIOBase)
			}
		case strings.HasPrefix(ev.Name, "evict "):
			counts["evict"]++
			if ev.Tid != traceTidLoop {
				t.Fatalf("evict instant on tid %d, want the loop lane %d", ev.Tid, traceTidLoop)
			}
			if ev.Ph != "i" {
				t.Fatalf("evict event has phase %q, want instant", ev.Ph)
			}
		case strings.HasPrefix(ev.Name, "grant "):
			counts["grant"]++
			if ev.Tid != traceTidLease {
				t.Fatalf("grant span on tid %d, want the lease lane %d", ev.Tid, traceTidLease)
			}
		}
	}
	for _, kind := range []string{"spill", "load", "evict", "grant"} {
		if counts[kind] == 0 {
			t.Fatalf("no %s events in the trace; counts = %v", kind, counts)
		}
	}
	// Flushing 6 blocks through 2-block memory must have spilled all 6 and
	// reloaded at least the evicted ones; every Request granted a lease.
	if counts["spill"] < blocks {
		t.Fatalf("spill spans = %d, want >= %d", counts["spill"], blocks)
	}
	if counts["grant"] < 2*blocks {
		t.Fatalf("grant spans = %d, want >= %d", counts["grant"], 2*blocks)
	}
	for _, lane := range []string{"storage", "lease", "io0", "io1"} {
		if !lanes[lane] {
			t.Fatalf("lane %q not named in trace metadata; have %v", lane, lanes)
		}
	}
}

// TestStorageUntracedEmitsNothing: with no tracer configured the storage
// layer adds zero trace events (the Enabled gate short-circuits the span
// sites), so tracing off costs nothing on the I/O path.
func TestStorageUntracedEmitsNothing(t *testing.T) {
	s, err := NewLocal(Config{MemoryBudget: 1 << 20, ScratchDir: t.TempDir(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if err := s.Create("a", 4096, 1024); err != nil {
		t.Fatal(err)
	}
	w, err := s.Request("a", 0, 1024, PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	w.Release()
	// The nil tracer path must simply not panic anywhere; nothing to
	// assert beyond the store working (the gate is s.cfg.Trace.Enabled()).
	if err := s.Flush("a"); err != nil {
		t.Fatal(err)
	}
}
