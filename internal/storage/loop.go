package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"dooc/internal/compress"
)

// ErrClosed is returned for requests outstanding when the store shuts down.
var ErrClosed = errors.New("storage: store closed")

// ---- message types ----

type leaseResult struct {
	lease *Lease
	err   error
}

type cmdRequest struct {
	array  string
	lo, hi int64
	// byBlock requests the whole block by index instead of a byte interval;
	// the loop resolves the span from the array's metadata, saving the
	// client an Info round-trip per block request.
	block   int
	byBlock bool
	perm    Perm
	reply   chan leaseResult
}

type cmdRelease struct {
	lease *Lease
	// abandon skips publication of a write lease: the interval reverts to
	// unwritten instead of becoming readable.
	abandon bool
}

// Request and release dominate steady-state message traffic; pooling the
// command structs (posted as pointers) and the one-shot reply channels keeps
// the hot path free of per-call allocation. A command struct returns to its
// pool as soon as its handler finishes (the handler retains at most the
// reply channel, never the struct); a reply channel returns once its single
// reply has been received.
var (
	reqPool        = sync.Pool{New: func() any { return new(cmdRequest) }}
	relPool        = sync.Pool{New: func() any { return new(cmdRelease) }}
	leaseReplyPool = sync.Pool{New: func() any { return make(chan leaseResult, 1) }}
	createPool     = sync.Pool{New: func() any { return new(msgCreateArr) }}
	deletePool     = sync.Pool{New: func() any { return new(msgDeleteArr) }}
	prefetchPool   = sync.Pool{New: func() any { return new(cmdPrefetch) }}
)

type cmdPrefetch struct {
	array   string
	lo, hi  int64
	block   int
	byBlock bool
}

type cmdFlush struct {
	array string
	reply chan error
}

type cmdMap struct{ reply chan ResidencyMap }

type cmdStats struct{ reply chan Stats }

type infoResult struct {
	info ArrayInfo
	err  error
}

type cmdInfo struct {
	array string
	reply chan infoResult
}

type cmdEvict struct {
	array string
	block int
	reply chan error
}

// msgCreateArr registers array metadata (broadcast by Create).
type msgCreateArr struct {
	info ArrayInfo
	ack  chan error
}

// msgDeleteArr removes an array everywhere (broadcast by Delete).
type msgDeleteArr struct {
	name string
	ack  chan error
}

// msgAnnounce registers a pre-existing on-disk array found by the startup
// scan of diskNode's scratch directory. compressed marks the per-block
// frame layout (meaningful only on diskNode itself, which is the node that
// reads those files).
type msgAnnounce struct {
	info       ArrayInfo
	diskNode   int
	compressed bool
}

type queryKind int

const (
	// queryProbe is the random-peer probe: "do you happen to hold this?"
	queryProbe queryKind = iota
	// queryHome asks the block's directory owner where the block lives.
	queryHome
	// queryFetch asks a specific node believed to hold the block.
	queryFetch
)

// msgQuery travels between stores to locate and fetch blocks.
type msgQuery struct {
	array string
	block int
	from  int
	kind  queryKind
}

type replyOutcome int

const (
	replyData replyOutcome = iota
	replyMiss
	replyRedirect
)

// msgQueryReply answers a msgQuery.
type msgQueryReply struct {
	array   string
	block   int
	from    int
	kind    queryKind // the kind of the query being answered
	outcome replyOutcome
	data    []byte
	holder  int // for replyRedirect
}

// msgNotify updates the block's home directory: node now holds (or no
// longer holds) the block; onDisk distinguishes a durable copy.
type msgNotify struct {
	array  string
	block  int
	node   int
	onDisk bool
	gone   bool
}

// codecStats carries one I/O filter's compression accounting back to the
// actor loop: the logical (raw) and physical (frame) byte counts and the
// codec the frame actually used (which differs from the configured codec
// when the adaptive encoder bailed out to raw).
type codecStats struct {
	framed      bool
	codecID     uint8
	rawBytes    int64
	storedBytes int64
	bailout     bool
}

// ioDone delivers an asynchronous block read. retries counts transient
// failures the I/O filter survived before succeeding (or giving up).
type ioDone struct {
	array   string
	block   int
	data    []byte
	err     error
	retries int
	codec   codecStats
}

// ioWrote delivers an asynchronous block write-back.
type ioWrote struct {
	array   string
	block   int
	err     error
	retries int
	codec   codecStats
}

// ---- in-loop state ----

type readWaiter struct {
	lo, hi int64
	reply  chan leaseResult
}

type blockState struct {
	buf []byte
	// written is the immutability record: every byte range ever written.
	// It never shrinks while the array exists — in particular it survives
	// eviction, so a rewrite of evicted-but-durable data is still rejected.
	written intervalSet
	// resident is the coverage of buf: which ranges currently hold valid
	// data in memory. Equal to written until an eviction clears it; a
	// refetch restores it to full.
	resident       intervalSet
	writing        []span
	refcnt         int
	persistedLocal bool
	remoteBacked   bool
	fetching       bool // disk read or directed fetch in flight
	probing        bool // random-peer probe in flight
	flushing       bool
	// prefetched marks a block whose in-flight fetch was initiated by a
	// prefetch; the first resident read hit consumes it (a prefetch hit).
	prefetched bool
	// Shard-tier state: shardBacked+shardDurable mark a block whose bytes
	// enough remote cluster peers acknowledged to survive any single peer
	// death — such a block is evictable without a local disk spill and is
	// refetched over the ring first. shardPushing guards one background
	// push at a time.
	shardBacked  bool
	shardDurable bool
	shardPushing bool
	waiters      []readWaiter
	lastUse      int64
	loadTick     int64 // when buf was (re)allocated, for FIFO eviction
}

type arrayState struct {
	info      ArrayInfo
	blocks    map[int]*blockState
	diskNodes map[int]bool // nodes holding the full array on disk
	// localCompressed marks this node's durable copy as the per-block frame
	// layout (set by a codec flush or the startup scan); it selects the
	// framed read path and keeps an array's layout consistent across
	// flushes.
	localCompressed bool
	// quota is the resource group this array belongs to (longest matching
	// name prefix), nil when unquota'd. scratchBytes is the durable scratch
	// attribution carried to the group's ScratchUsed.
	quota        *quotaState
	scratchBytes int64
}

type blockKey struct {
	array string
	block int
}

// dirEntry is the home node's directory record for one block.
type dirEntry struct {
	mem     map[int]bool
	disk    map[int]bool
	pending []int // requester nodes awaiting any holder
}

type flushState struct {
	pending int
	err     error
	reply   chan error
}

type loopState struct {
	arrays  map[string]*arrayState
	dir     map[blockKey]*dirEntry
	flushes map[string]*flushState
	quotas  map[string]*quotaState // keyed by array-name prefix
	stats   Stats
	tick    int64
}

// loop is the store's actor: it owns all state and processes messages one
// at a time. No other goroutine touches loopState.
func (s *Store) loop() {
	st := &loopState{
		arrays:  make(map[string]*arrayState),
		dir:     make(map[blockKey]*dirEntry),
		flushes: make(map[string]*flushState),
		quotas:  make(map[string]*quotaState),
	}
	defer close(s.done)
	for {
		m, ok := s.inbox.get()
		if !ok {
			s.teardown(st)
			return
		}
		switch m := m.(type) {
		case *cmdRequest:
			s.handleRequest(st, m)
			*m = cmdRequest{}
			reqPool.Put(m)
		case *cmdRelease:
			s.handleRelease(st, m)
			*m = cmdRelease{}
			relPool.Put(m)
		case *cmdPrefetch:
			s.handlePrefetch(st, m)
			*m = cmdPrefetch{}
			prefetchPool.Put(m)
		case cmdFlush:
			s.handleFlush(st, m)
		case cmdMap:
			m.reply <- s.buildMap(st)
		case cmdInfo:
			if ast, ok := st.arrays[m.array]; ok {
				m.reply <- infoResult{info: ast.info}
			} else {
				m.reply <- infoResult{err: fmt.Errorf("storage: unknown array %q", m.array)}
			}
		case cmdEvict:
			m.reply <- s.handleEvict(st, m)
		case cmdStats:
			st.stats.MemUsed = s.memUsed(st)
			s.metrics.memUsed.Set(st.stats.MemUsed)
			m.reply <- st.stats
		case *msgCreateArr:
			m.ack <- s.handleCreate(st, m.info)
			*m = msgCreateArr{}
			createPool.Put(m)
		case *msgDeleteArr:
			m.ack <- s.handleDelete(st, m.name)
			*m = msgDeleteArr{}
			deletePool.Put(m)
		case msgAnnounce:
			s.handleAnnounce(st, m)
		case *msgQuery:
			s.handleQuery(st, *m)
			*m = msgQuery{}
			queryPool.Put(m)
		case *msgQueryReply:
			s.handleQueryReply(st, *m)
			*m = msgQueryReply{}
			queryReplyPool.Put(m)
		case msgNotify:
			s.handleNotify(st, m)
		case ioDone:
			s.handleIODone(st, m)
		case ioWrote:
			s.handleIOWrote(st, m)
		case shardDone:
			s.handleShardDone(st, m)
		case shardPushed:
			s.handleShardPushed(st, m)
		case cmdSetQuota:
			s.handleSetQuota(st, m)
		case cmdClearQuota:
			s.handleClearQuota(st, m)
		case cmdQuotaStats:
			s.handleQuotaStats(st, m)
		default:
			panic(fmt.Sprintf("storage: unknown message %T", m))
		}
	}
}

// teardown fails outstanding waiters when the store closes.
func (s *Store) teardown(st *loopState) {
	for _, ast := range st.arrays {
		for _, b := range ast.blocks {
			for _, w := range b.waiters {
				w.reply <- leaseResult{err: ErrClosed}
			}
			b.waiters = nil
		}
	}
	for _, f := range st.flushes {
		if f.reply != nil {
			f.reply <- ErrClosed
		}
	}
}

func (s *Store) memUsed(st *loopState) int64 {
	var n int64
	for _, ast := range st.arrays {
		for _, b := range ast.blocks {
			n += int64(len(b.buf))
		}
	}
	return n
}

func (s *Store) getBlock(ast *arrayState, idx int) *blockState {
	b, ok := ast.blocks[idx]
	if !ok {
		b = s.newBlockState()
		ast.blocks[idx] = b
	}
	return b
}

// The freelist helpers below run only on the loop goroutine, which owns the
// lists exclusively.

func (s *Store) newBlockState() *blockState {
	if n := len(s.blockFree); n > 0 {
		b := s.blockFree[n-1]
		s.blockFree[n-1] = nil
		s.blockFree = s.blockFree[:n-1]
		return b
	}
	return &blockState{}
}

// recycleBlockState returns b to the freelist. Caller guarantees nothing
// aliases it any more: no leases, no in-flight I/O, no waiters, buf already
// recycled.
func (s *Store) recycleBlockState(b *blockState) {
	clear(b.waiters)
	*b = blockState{
		written:  intervalSet{spans: b.written.spans[:0]},
		resident: intervalSet{spans: b.resident.spans[:0]},
		writing:  b.writing[:0],
		waiters:  b.waiters[:0],
	}
	s.blockFree = append(s.blockFree, b)
}

func (s *Store) newArrayState(info ArrayInfo, q *quotaState) *arrayState {
	if n := len(s.astFree); n > 0 {
		ast := s.astFree[n-1]
		s.astFree[n-1] = nil
		s.astFree = s.astFree[:n-1]
		clear(ast.blocks)
		clear(ast.diskNodes)
		*ast = arrayState{info: info, blocks: ast.blocks, diskNodes: ast.diskNodes, quota: q}
		return ast
	}
	return &arrayState{
		info:      info,
		blocks:    make(map[int]*blockState),
		diskNodes: make(map[int]bool),
		quota:     q,
	}
}

func (s *Store) newDirEntry() *dirEntry {
	if n := len(s.dirFree); n > 0 {
		de := s.dirFree[n-1]
		s.dirFree[n-1] = nil
		s.dirFree = s.dirFree[:n-1]
		clear(de.mem)
		clear(de.disk)
		de.pending = de.pending[:0]
		return de
	}
	return &dirEntry{mem: make(map[int]bool), disk: make(map[int]bool)}
}

// ---- array lifecycle ----

func (s *Store) handleCreate(st *loopState, info ArrayInfo) error {
	if info.Name == "" || info.Size <= 0 || info.BlockSize <= 0 {
		return fmt.Errorf("storage: invalid array %q size=%d blockSize=%d", info.Name, info.Size, info.BlockSize)
	}
	if _, dup := st.arrays[info.Name]; dup {
		return fmt.Errorf("storage: array %q already exists", info.Name)
	}
	st.arrays[info.Name] = s.newArrayState(info, quotaFor(st, info.Name))
	return nil
}

func (s *Store) handleDelete(st *loopState, name string) error {
	ast, ok := st.arrays[name]
	if !ok {
		return fmt.Errorf("storage: array %q does not exist", name)
	}
	for idx, b := range ast.blocks {
		if b.refcnt > 0 {
			return fmt.Errorf("storage: array %q block %d still leased", name, idx)
		}
		if b.fetching || b.flushing {
			return fmt.Errorf("storage: array %q block %d has I/O in flight", name, idx)
		}
	}
	// Fail any read waiters (data will never arrive).
	for _, b := range ast.blocks {
		for _, w := range b.waiters {
			w.reply <- leaseResult{err: fmt.Errorf("storage: array %q deleted", name)}
		}
	}
	if ast.quota != nil {
		// The array's durable scratch goes away with it; return the bytes
		// to the group's scratch budget.
		ast.quota.scratchUsed -= ast.scratchBytes
	}
	// Recycle the blocks' buffers and state: the preconditions above
	// guarantee nothing aliases them.
	for _, b := range ast.blocks {
		sharedArena.Put(b.buf)
		b.buf = nil
		s.recycleBlockState(b)
	}
	delete(st.arrays, name)
	// Directory entries are keyed per block; delete by key instead of
	// scanning the whole directory.
	for idx := 0; idx < ast.info.NumBlocks(); idx++ {
		k := blockKey{name, idx}
		if de, ok := st.dir[k]; ok {
			delete(st.dir, k)
			s.dirFree = append(s.dirFree, de)
		}
	}
	// Only an array with durable local state has files to clean up. The
	// common ephemeral case (a transient vector generation that lived and
	// died in memory) skips the file system entirely — on the hot path the
	// stat/remove pair per deleted array costs more than the delete itself.
	if s.cfg.ScratchDir != "" &&
		(ast.scratchBytes > 0 || ast.localCompressed || ast.diskNodes[s.cfg.NodeID] || anyPersisted(ast)) {
		os.Remove(s.arrayPath(name))
		os.Remove(s.metaPath(name))
		os.RemoveAll(s.blockDir(name))
	}
	s.astFree = append(s.astFree, ast)
	return nil
}

func (s *Store) handleAnnounce(st *loopState, m msgAnnounce) {
	ast, ok := st.arrays[m.info.Name]
	if !ok {
		ast = &arrayState{
			info:      m.info,
			blocks:    make(map[int]*blockState),
			diskNodes: make(map[int]bool),
			quota:     quotaFor(st, m.info.Name),
		}
		st.arrays[m.info.Name] = ast
	}
	ast.diskNodes[m.diskNode] = true
	if m.compressed && m.diskNode == s.cfg.NodeID {
		ast.localCompressed = true
	}
	// Register the disk copy in the directory entries this node owns.
	for idx := 0; idx < m.info.NumBlocks(); idx++ {
		if s.homeOf(m.info.Name, idx) == s.cfg.NodeID {
			de := s.dirOf(st, blockKey{m.info.Name, idx})
			de.disk[m.diskNode] = true
			s.wakePending(st, blockKey{m.info.Name, idx}, de)
		}
	}
}

func (s *Store) dirOf(st *loopState, k blockKey) *dirEntry {
	de, ok := st.dir[k]
	if !ok {
		de = s.newDirEntry()
		st.dir[k] = de
	}
	return de
}

// ---- leases ----

func (s *Store) handleRequest(st *loopState, c *cmdRequest) {
	if c.perm == PermWrite {
		st.stats.WriteRequests++
		s.metrics.writeReqs.Inc()
	} else {
		st.stats.ReadRequests++
		s.metrics.readReqs.Inc()
	}
	ast, ok := st.arrays[c.array]
	if !ok {
		c.reply <- leaseResult{err: fmt.Errorf("storage: unknown array %q", c.array)}
		return
	}
	if c.byBlock {
		bs := ast.info.BlockSpan(c.block)
		if bs.empty() {
			c.reply <- leaseResult{err: fmt.Errorf("storage: block %d out of array %q", c.block, c.array)}
			return
		}
		c.lo, c.hi = bs.Lo, bs.Hi
	}
	if c.lo < 0 || c.hi > ast.info.Size || c.lo >= c.hi {
		c.reply <- leaseResult{err: fmt.Errorf("storage: interval [%d,%d) out of array %q size %d", c.lo, c.hi, c.array, ast.info.Size)}
		return
	}
	bi := ast.info.BlockOf(c.lo)
	if ast.info.BlockOf(c.hi-1) != bi {
		c.reply <- leaseResult{err: fmt.Errorf("storage: interval [%d,%d) spans blocks (block size %d); use one interval per block", c.lo, c.hi, ast.info.BlockSize)}
		return
	}
	b := s.getBlock(ast, bi)
	want := span{c.lo, c.hi}
	switch c.perm {
	case PermWrite:
		s.grantWrite(st, ast, bi, b, want, c.reply)
	case PermRead:
		if b.buf != nil && b.resident.covers(relSpan(ast.info, bi, want)) {
			st.stats.Hits++
			s.metrics.hits.Inc()
			if b.prefetched {
				b.prefetched = false
				st.stats.PrefetchHits++
				s.metrics.prefetchHits.Inc()
			}
			c.reply <- leaseResult{lease: s.makeLease(st, c.array, bi, ast, b, want, PermRead)}
			return
		}
		st.stats.Misses++
		s.metrics.misses.Inc()
		b.waiters = append(b.waiters, readWaiter{lo: c.lo, hi: c.hi, reply: c.reply})
		s.ensureBlockData(st, ast, bi, b)
	default:
		c.reply <- leaseResult{err: fmt.Errorf("storage: invalid permission %v", c.perm)}
	}
}

// relSpan converts a global interval to block-relative coordinates.
func relSpan(info ArrayInfo, bi int, gs span) span {
	base := info.BlockSpan(bi).Lo
	return span{gs.Lo - base, gs.Hi - base}
}

func (s *Store) grantWrite(st *loopState, ast *arrayState, bi int, b *blockState, want span, reply chan leaseResult) {
	rs := relSpan(ast.info, bi, want)
	if b.written.covers(rs) || b.overlapsAny(rs) {
		reply <- leaseResult{err: fmt.Errorf("storage: immutable violation: %q[%d,%d) already written or being written", ast.info.Name, want.Lo, want.Hi)}
		return
	}
	// Also reject partial overlap with written spans.
	for _, w := range b.written.spans {
		if w.overlaps(rs) {
			reply <- leaseResult{err: fmt.Errorf("storage: immutable violation: %q[%d,%d) overlaps written data", ast.info.Name, want.Lo, want.Hi)}
			return
		}
	}
	if b.buf == nil {
		bs := ast.info.BlockSpan(bi)
		b.buf = sharedArena.Get(int(bs.Hi - bs.Lo))
		// Recycled buffers carry stale bytes; a fresh write block must start
		// from zeroes (the abandon path and partial writers rely on it).
		clear(b.buf)
		st.tick++
		b.loadTick = st.tick
		s.reclaim(st, ast.info.Name, bi)
		s.reclaimQuota(st, ast.quota, ast.info.Name, bi)
	}
	b.writing = append(b.writing, rs)
	reply <- leaseResult{lease: s.makeLease(st, ast.info.Name, bi, ast, b, want, PermWrite)}
}

func (b *blockState) overlapsAny(rs span) bool {
	for _, w := range b.writing {
		if w.overlaps(rs) {
			return true
		}
	}
	return false
}

func (s *Store) makeLease(st *loopState, array string, bi int, ast *arrayState, b *blockState, want span, perm Perm) *Lease {
	rs := relSpan(ast.info, bi, want)
	b.refcnt++
	st.tick++
	b.lastUse = st.tick
	return &Lease{
		store: s,
		Array: array,
		Perm:  perm,
		Lo:    want.Lo,
		Hi:    want.Hi,
		Data:  b.buf[rs.Lo:rs.Hi],
		block: bi,
	}
}

func (s *Store) handleRelease(st *loopState, c *cmdRelease) {
	l := c.lease
	ast, ok := st.arrays[l.Array]
	if !ok {
		return // array deleted with lease outstanding; nothing to update
	}
	b, ok := ast.blocks[l.block]
	if !ok {
		return
	}
	b.refcnt--
	st.tick++
	b.lastUse = st.tick
	if l.Perm == PermWrite {
		rs := relSpan(ast.info, l.block, span{l.Lo, l.Hi})
		for i, w := range b.writing {
			if w == rs {
				b.writing = append(b.writing[:i], b.writing[i+1:]...)
				break
			}
		}
		if c.abandon {
			// The writer failed before filling the interval: leave it
			// unwritten so a re-executed task can lease it again. Clear the
			// buffer bytes — the next writer starts from zeroes, and waiters
			// keep blocking until a successful write publishes.
			for i := rs.Lo; i < rs.Hi; i++ {
				b.buf[i] = 0
			}
			s.reclaim(st, "", -1)
			return
		}
		if err := b.written.add(rs); err != nil {
			// Cannot happen: the span was validated at grant time.
			panic(fmt.Sprintf("storage: release bookkeeping: %v", err))
		}
		if err := b.resident.add(rs); err != nil {
			panic(fmt.Sprintf("storage: residency bookkeeping: %v", err))
		}
		s.wakeWaiters(st, ast, l.block, b)
		bs := ast.info.BlockSpan(l.block)
		if b.resident.full(bs.Hi-bs.Lo) && s.homeOf(l.Array, l.block) != s.cfg.NodeID {
			s.peers[s.homeOf(l.Array, l.block)].post(msgNotify{array: l.Array, block: l.block, node: s.cfg.NodeID})
		} else if b.resident.full(bs.Hi - bs.Lo) {
			de := s.dirOf(st, blockKey{l.Array, l.block})
			de.mem[s.cfg.NodeID] = true
			s.wakePending(st, blockKey{l.Array, l.block}, de)
		}
		s.maybeShardPush(st, ast, l.block, b)
	}
	s.reclaim(st, "", -1)
	s.reclaimQuota(st, ast.quota, "", -1)
}

// wakeWaiters grants read waiters whose intervals are now covered.
func (s *Store) wakeWaiters(st *loopState, ast *arrayState, bi int, b *blockState) {
	if b.buf == nil {
		return
	}
	var rest []readWaiter
	for _, w := range b.waiters {
		ws := span{w.lo, w.hi}
		if b.resident.covers(relSpan(ast.info, bi, ws)) {
			w.reply <- leaseResult{lease: s.makeLease(st, ast.info.Name, bi, ast, b, ws, PermRead)}
		} else {
			rest = append(rest, w)
		}
	}
	b.waiters = rest
}

// ---- data movement ----

// ensureBlockData starts whatever fetch gets block bi's data here, if one is
// not already in flight and no local writer will produce it.
func (s *Store) ensureBlockData(st *loopState, ast *arrayState, bi int, b *blockState) {
	if b.fetching || b.probing {
		return
	}
	// A local writer holds an unreleased lease covering part of this block;
	// the release will wake waiters. (If the writer never covers the waited
	// interval the request legitimately blocks forever — same semantics as
	// the paper's "can not be read before being written".)
	if len(b.writing) > 0 {
		return
	}
	name := ast.info.Name
	if b.persistedLocal || ast.diskNodes[s.cfg.NodeID] {
		b.fetching = true
		st.stats.ImplicitDiskReads++
		bs := ast.info.BlockSpan(bi)
		if ast.localCompressed {
			s.io.read(name, bi, s.blockPath(name, bi), 0, bs.Hi-bs.Lo, true)
		} else {
			s.io.read(name, bi, s.arrayPath(name), bs.Lo, bs.Hi-bs.Lo, false)
		}
		return
	}
	// A shard-backed block was durably pushed onto the cluster ring; its
	// bytes live on remote peers, not local disk. Refetch over the ring —
	// a miss (owner died) falls back to the paths below via
	// handleShardDone.
	if s.cfg.Shard != nil && b.shardBacked {
		b.fetching = true
		go s.shardFetch(name, bi)
		return
	}
	home := s.homeOf(name, bi)
	if home == s.cfg.NodeID {
		de := s.dirOf(st, blockKey{name, bi})
		if holder, ok := pickHolder(de, s.cfg.NodeID); ok {
			b.fetching = true
			s.postQuery(holder, name, bi, queryFetch)
			return
		}
		de.pending = append(de.pending, s.cfg.NodeID)
		return
	}
	// Random-peer probe, the paper's lookup opener.
	b.probing = true
	st.stats.PeerProbes++
	s.metrics.peerProbes.Inc()
	peer := s.randomPeer()
	s.postQuery(peer, name, bi, queryProbe)
}

// randomPeer picks a peer other than self (requires >= 2 nodes).
func (s *Store) randomPeer() int {
	p := s.rng.Intn(len(s.peers) - 1)
	if p >= s.cfg.NodeID {
		p++
	}
	return p
}

// pickHolder chooses a node to fetch from: memory copies first, then disk.
func pickHolder(de *dirEntry, exclude int) (int, bool) {
	best := -1
	for n := range de.mem {
		if n != exclude && (best == -1 || n < best) {
			best = n
		}
	}
	if best >= 0 {
		return best, true
	}
	for n := range de.disk {
		if n != exclude && (best == -1 || n < best) {
			best = n
		}
	}
	return best, best >= 0
}

// Inter-store queries and replies travel as pooled pointers: the posting
// side fills a struct from the shared pool, the receiving loop recycles it
// after handling. Stores post directly into each other's mailboxes, so a
// message is handled exactly once and the recycle is safe.
var (
	queryPool      = sync.Pool{New: func() any { return new(msgQuery) }}
	queryReplyPool = sync.Pool{New: func() any { return new(msgQueryReply) }}
)

// postQuery sends a pooled query to peer `to`; the receiving loop recycles it.
func (s *Store) postQuery(to int, array string, block int, kind queryKind) {
	q := queryPool.Get().(*msgQuery)
	*q = msgQuery{array: array, block: block, from: s.cfg.NodeID, kind: kind}
	s.peers[to].post(q)
}

// newQueryReply builds a pooled reply skeleton; callers fill the outcome
// fields and post it.
func (s *Store) newQueryReply(array string, block int, kind queryKind) *msgQueryReply {
	r := queryReplyPool.Get().(*msgQueryReply)
	*r = msgQueryReply{array: array, block: block, from: s.cfg.NodeID, kind: kind}
	return r
}

func (s *Store) handleQuery(st *loopState, m msgQuery) {
	ast, ok := st.arrays[m.array]
	if ok {
		if b, has := ast.blocks[m.block]; has && b.buf != nil {
			bs := ast.info.BlockSpan(m.block)
			if b.resident.full(bs.Hi - bs.Lo) {
				reply := s.newQueryReply(m.array, m.block, m.kind)
				reply.outcome = replyData
				reply.data = sharedArena.Get(len(b.buf))
				copy(reply.data, b.buf)
				st.tick++
				b.lastUse = st.tick
				s.ledger(s.cfg.NodeID, m.from, int64(len(reply.data)))
				s.peers[m.from].post(reply)
				return
			}
		}
		// Not resident but durable here: serve via an implicit disk read,
		// then forward (the paper's storage reads from its file system
		// implicitly when a non-resident interval is requested).
		if ast.diskNodes[s.cfg.NodeID] || blockPersisted(ast, m.block) {
			b := s.getBlock(ast, m.block)
			b.waiters = append(b.waiters, readWaiter{lo: ast.info.BlockSpan(m.block).Lo, hi: ast.info.BlockSpan(m.block).Hi, reply: s.forwardOnLoad(m)})
			s.ensureBlockData(st, ast, m.block, b)
			return
		}
	}
	switch m.kind {
	case queryProbe, queryFetch:
		reply := s.newQueryReply(m.array, m.block, m.kind)
		reply.outcome = replyMiss
		s.peers[m.from].post(reply)
		if m.kind == queryFetch {
			// The directory believed we held it; tell home it is gone.
			s.peers[s.homeOf(m.array, m.block)].post(msgNotify{array: m.array, block: m.block, node: s.cfg.NodeID, gone: true})
		}
	case queryHome:
		de := s.dirOf(st, blockKey{m.array, m.block})
		if holder, ok := pickHolder(de, m.from); ok {
			reply := s.newQueryReply(m.array, m.block, m.kind)
			reply.outcome = replyRedirect
			reply.holder = holder
			s.peers[m.from].post(reply)
			return
		}
		de.pending = append(de.pending, m.from)
	}
}

// blockPersisted reports whether block bi has a durable local copy.
func blockPersisted(ast *arrayState, bi int) bool {
	b, ok := ast.blocks[bi]
	return ok && b.persistedLocal
}

// forwardOnLoad builds a one-shot waiter reply channel that, when the local
// disk read completes and a read lease is granted, ships the block to the
// remote requester and releases the lease.
func (s *Store) forwardOnLoad(m msgQuery) chan leaseResult {
	ch := make(chan leaseResult, 1)
	go func() {
		res := <-ch
		reply := s.newQueryReply(m.array, m.block, m.kind)
		if res.err != nil || res.lease == nil {
			reply.outcome = replyMiss
		} else {
			reply.outcome = replyData
			reply.data = sharedArena.Get(len(res.lease.Data))
			copy(reply.data, res.lease.Data)
			res.lease.Release()
			s.ledger(s.cfg.NodeID, m.from, int64(len(reply.data)))
		}
		s.peers[m.from].post(reply)
	}()
	return ch
}

func (s *Store) handleQueryReply(st *loopState, m msgQueryReply) {
	ast, ok := st.arrays[m.array]
	if !ok {
		return
	}
	b := s.getBlock(ast, m.block)
	switch m.outcome {
	case replyData:
		b.fetching = false
		b.probing = false
		s.installBlock(st, ast, m.block, b, m.data, true, false)
		st.stats.BytesFetchedPeer += int64(len(m.data))
		s.metrics.peerBytes.Add(int64(len(m.data)))
	case replyMiss:
		st.stats.PeerProbeMisses++
		s.metrics.peerProbeMisses.Inc()
		if !b.fetching && !b.probing {
			return
		}
		// Escalate to the directory owner.
		b.fetching = false
		b.probing = true
		s.postQuery(s.homeOf(m.array, m.block), m.array, m.block, queryHome)
	case replyRedirect:
		b.probing = false
		b.fetching = true
		s.postQuery(m.holder, m.array, m.block, queryFetch)
	}
}

func (s *Store) handleNotify(st *loopState, m msgNotify) {
	k := blockKey{m.array, m.block}
	de := s.dirOf(st, k)
	if m.gone {
		delete(de.mem, m.node)
		// A gone notice may strand pending requesters; re-resolve them.
		s.wakePending(st, k, de)
		return
	}
	if m.onDisk {
		de.disk[m.node] = true
	} else {
		de.mem[m.node] = true
	}
	s.wakePending(st, k, de)
}

// wakePending redirects requesters queued at the home directory once a
// holder exists.
func (s *Store) wakePending(st *loopState, k blockKey, de *dirEntry) {
	if len(de.pending) == 0 {
		return
	}
	var still []int
	for _, node := range de.pending {
		holder, ok := pickHolder(de, node)
		if !ok {
			still = append(still, node)
			continue
		}
		if node == s.cfg.NodeID {
			// We are both home and requester: fetch directly.
			if ast, ok := st.arrays[k.array]; ok {
				b := s.getBlock(ast, k.block)
				if b.buf == nil && !b.fetching {
					b.fetching = true
					s.postQuery(holder, k.array, k.block, queryFetch)
				}
			}
			continue
		}
		reply := s.newQueryReply(k.array, k.block, queryHome)
		reply.outcome = replyRedirect
		reply.holder = holder
		s.peers[node].post(reply)
	}
	de.pending = still
}

// installBlock adopts a complete block buffer that arrived from disk or a
// peer, wakes waiters, and registers this node as a holder.
func (s *Store) installBlock(st *loopState, ast *arrayState, bi int, b *blockState, data []byte, remoteBacked, persisted bool) {
	bs := ast.info.BlockSpan(bi)
	if int64(len(data)) != bs.Hi-bs.Lo {
		for _, w := range b.waiters {
			w.reply <- leaseResult{err: fmt.Errorf("storage: block %s[%d] has %d bytes, want %d", ast.info.Name, bi, len(data), bs.Hi-bs.Lo)}
		}
		b.waiters = nil
		sharedArena.Put(data)
		return
	}
	if b.buf != nil {
		// A stale resident buffer (e.g. a partially-written block superseded
		// by a complete remote copy) is replaced; recycle it. refcnt must be
		// zero here — fetches are only started when no lease pins the block.
		if b.refcnt == 0 {
			sharedArena.Put(b.buf)
		}
	}
	b.buf = data
	st.tick++
	b.loadTick = st.tick
	st.stats.BlockLoads++
	s.metrics.blockLoads.Inc()
	// A durable or remote copy is by definition fully written; restore both
	// the residency coverage and the immutability record to full (keeping
	// the span backing — this runs on every block load).
	b.resident.spans = b.resident.spans[:0]
	if err := b.resident.add(span{0, int64(len(data))}); err != nil {
		panic(err)
	}
	b.written.spans = b.written.spans[:0]
	if err := b.written.add(span{0, int64(len(data))}); err != nil {
		panic(err)
	}
	b.remoteBacked = b.remoteBacked || remoteBacked
	b.persistedLocal = b.persistedLocal || persisted
	s.wakeWaiters(st, ast, bi, b)
	home := s.homeOf(ast.info.Name, bi)
	if home == s.cfg.NodeID {
		de := s.dirOf(st, blockKey{ast.info.Name, bi})
		de.mem[s.cfg.NodeID] = true
		s.wakePending(st, blockKey{ast.info.Name, bi}, de)
	} else {
		s.peers[home].post(msgNotify{array: ast.info.Name, block: bi, node: s.cfg.NodeID})
	}
	s.reclaim(st, ast.info.Name, bi)
	s.reclaimQuota(st, ast.quota, ast.info.Name, bi)
}

// ---- memory reclamation ----

// reclaim enforces the memory budget with LRU eviction. Blocks are
// reclaimable only when unpinned and backed by a durable or remote copy —
// the paper's rule ("reclaims blocks that are stored on the disk of any node
// and which are not currently used"). protect identifies a block that must
// survive this pass (typically the one just installed).
func (s *Store) reclaim(st *loopState, protectArray string, protectBlock int) {
	used := s.memUsed(st)
	s.metrics.memUsed.Set(used)
	if used <= s.cfg.MemoryBudget {
		return
	}
	victims := s.collectVictims(st, protectArray, protectBlock, nil)
	for _, v := range victims {
		if used <= s.cfg.MemoryBudget {
			s.metrics.memUsed.Set(used)
			return
		}
		used -= int64(len(v.b.buf))
		s.dropBlock(st, v.name, v.idx, v.b)
		st.stats.Evictions++
		s.metrics.evictions.Inc()
		s.traceEvict(v.name, v.idx)
	}
	s.metrics.memUsed.Set(used)
	if used > s.cfg.MemoryBudget {
		st.stats.OverBudgetAllocs++
	}
}

type victim struct {
	ast  *arrayState
	name string
	idx  int
	b    *blockState
	key  int64
}

// collectVictims returns the evictable blocks in eviction-policy order,
// skipping the protected block. A non-nil group restricts candidates to
// that quota group's arrays.
func (s *Store) collectVictims(st *loopState, protectArray string, protectBlock int, group *quotaState) []victim {
	victims := victimSlice(s.victimBuf[:0])
	for name, ast := range st.arrays {
		if group != nil && ast.quota != group {
			continue
		}
		for idx, b := range ast.blocks {
			if name == protectArray && idx == protectBlock {
				continue
			}
			if b.buf == nil || b.refcnt > 0 || b.fetching || b.flushing || len(b.waiters) > 0 || len(b.writing) > 0 {
				continue
			}
			if !(b.persistedLocal || b.remoteBacked || ast.diskNodes[s.cfg.NodeID] || (b.shardBacked && b.shardDurable)) {
				continue
			}
			var key int64
			switch s.cfg.Eviction {
			case EvictFIFO:
				key = b.loadTick
			case EvictMRU:
				key = -b.lastUse
			default: // EvictLRU
				key = b.lastUse
			}
			victims = append(victims, victim{ast, name, idx, b, key})
		}
	}
	sort.Sort(victims)
	s.victimBuf = victims[:0]
	return victims
}

// victimSlice sorts by policy key, then name, then index — a named type so
// sorting needs no reflection-based swapper.
type victimSlice []victim

func (v victimSlice) Len() int      { return len(v) }
func (v victimSlice) Swap(i, j int) { v[i], v[j] = v[j], v[i] }
func (v victimSlice) Less(i, j int) bool {
	if v[i].key != v[j].key {
		return v[i].key < v[j].key
	}
	if v[i].name != v[j].name {
		return v[i].name < v[j].name
	}
	return v[i].idx < v[j].idx
}

// dropBlock releases a block's buffer and retracts this node from the
// block's directory entry. Callers account the eviction.
func (s *Store) dropBlock(st *loopState, name string, idx int, b *blockState) {
	// Eviction preconditions (no leases, waiters, writers, or I/O in flight)
	// mean nothing aliases buf; recycle it.
	sharedArena.Put(b.buf)
	b.buf = nil
	b.resident.spans = b.resident.spans[:0]
	b.prefetched = false
	home := s.homeOf(name, idx)
	if home == s.cfg.NodeID {
		delete(s.dirOf(st, blockKey{name, idx}).mem, s.cfg.NodeID)
	} else {
		s.peers[home].post(msgNotify{array: name, block: idx, node: s.cfg.NodeID, gone: true})
	}
}

// handleEvict implements the programmer-driven eviction (the paper:
// "explicit memory management can also be directly provided by the
// programmer"), under the same safety rules as automatic reclamation.
func (s *Store) handleEvict(st *loopState, m cmdEvict) error {
	ast, ok := st.arrays[m.array]
	if !ok {
		return fmt.Errorf("storage: unknown array %q", m.array)
	}
	b, ok := ast.blocks[m.block]
	if !ok || b.buf == nil {
		return nil // not resident: idempotent success
	}
	if b.refcnt > 0 {
		return fmt.Errorf("storage: %q block %d is leased", m.array, m.block)
	}
	if b.fetching || b.flushing || len(b.waiters) > 0 || len(b.writing) > 0 {
		return fmt.Errorf("storage: %q block %d has activity in flight", m.array, m.block)
	}
	if !(b.persistedLocal || b.remoteBacked || ast.diskNodes[s.cfg.NodeID] || (b.shardBacked && b.shardDurable)) {
		return fmt.Errorf("storage: %q block %d is the only copy (flush it first)", m.array, m.block)
	}
	s.dropBlock(st, m.array, m.block, b)
	st.stats.Evictions++
	s.metrics.evictions.Inc()
	s.traceEvict(m.array, m.block)
	return nil
}

// ---- prefetch, flush, map ----

func (s *Store) handlePrefetch(st *loopState, c *cmdPrefetch) {
	ast, ok := st.arrays[c.array]
	if !ok {
		return
	}
	if c.byBlock {
		bs := ast.info.BlockSpan(c.block)
		if bs.empty() {
			return
		}
		c.lo, c.hi = bs.Lo, bs.Hi
	}
	if c.lo < 0 || c.hi > ast.info.Size || c.lo >= c.hi {
		return
	}
	st.stats.PrefetchIssued++
	s.metrics.prefetchIssued.Inc()
	first := ast.info.BlockOf(c.lo)
	last := ast.info.BlockOf(c.hi - 1)
	for bi := first; bi <= last; bi++ {
		b := s.getBlock(ast, bi)
		bs := ast.info.BlockSpan(bi)
		if b.buf != nil && b.resident.full(bs.Hi-bs.Lo) {
			continue
		}
		wasInFlight := b.fetching || b.probing
		s.ensureBlockData(st, ast, bi, b)
		// Credit this prefetch only when it initiated the fetch; a block
		// already in flight from a demand miss stays a plain miss.
		if !wasInFlight && (b.fetching || b.probing) && !b.prefetched {
			b.prefetched = true
			st.stats.PrefetchLoads++
			s.metrics.prefetchLoads.Inc()
		}
	}
}

func (s *Store) handleFlush(st *loopState, c cmdFlush) {
	ast, ok := st.arrays[c.array]
	if !ok {
		c.reply <- fmt.Errorf("storage: unknown array %q", c.array)
		return
	}
	if s.cfg.ScratchDir == "" {
		c.reply <- fmt.Errorf("storage: flush of %q: store has no scratch directory", c.array)
		return
	}
	if f, inFlight := st.flushes[c.array]; inFlight {
		prev := f.reply
		f.reply = mergeErrChans(prev, c.reply)
		return
	}
	// Spill compressed when a codec is configured, unless this node already
	// holds the array in the raw single-file layout — an array's local
	// layout never mixes. The reverse also holds: an array already in the
	// framed layout stays framed even if this store has no codec (Raw
	// frames keep the directory readable).
	codec := s.cfg.Codec
	if codec == nil && ast.localCompressed {
		codec = compress.Raw{}
	}
	useCodec := codec != nil && (ast.localCompressed || !(ast.diskNodes[s.cfg.NodeID] || anyPersisted(ast)))
	if q := ast.quota; q != nil && q.scratchBudget > 0 {
		// Hard ceiling: reject the whole flush up front rather than spill
		// half an array. Sized on logical bytes — conservative when a codec
		// shrinks the physical frames.
		var pending int64
		for idx, b := range ast.blocks {
			bs := ast.info.BlockSpan(idx)
			if b.buf == nil || b.persistedLocal || !b.resident.full(bs.Hi-bs.Lo) {
				continue
			}
			pending += bs.Hi - bs.Lo
		}
		if q.scratchUsed+pending > q.scratchBudget {
			c.reply <- fmt.Errorf("storage: flush of %q: group %q used %d + %d pending > budget %d: %w",
				c.array, q.prefix, q.scratchUsed, pending, q.scratchBudget, ErrScratchQuota)
			return
		}
	}
	if useCodec && !ast.localCompressed {
		if err := os.MkdirAll(s.blockDir(c.array), 0o755); err != nil {
			c.reply <- fmt.Errorf("storage: flush of %q: %w", c.array, err)
			return
		}
		ast.localCompressed = true
	}
	fs := &flushState{reply: c.reply}
	for idx, b := range ast.blocks {
		bs := ast.info.BlockSpan(idx)
		if b.buf == nil || b.persistedLocal || !b.resident.full(bs.Hi-bs.Lo) {
			continue
		}
		b.flushing = true
		fs.pending++
		if useCodec {
			s.io.write(c.array, idx, s.blockPath(c.array, idx), 0, b.buf, codec)
		} else {
			s.io.write(c.array, idx, s.arrayPath(c.array), bs.Lo, b.buf, nil)
		}
	}
	if fs.pending == 0 {
		c.reply <- nil
		return
	}
	st.flushes[c.array] = fs
	s.writeSidecar(ast.info, useCodec)
}

// anyPersisted reports whether any block of the array has a durable local
// copy (which pins the array's existing on-disk layout).
func anyPersisted(ast *arrayState) bool {
	for _, b := range ast.blocks {
		if b.persistedLocal {
			return true
		}
	}
	return false
}

// mergeErrChans fans one error out to two waiters.
func mergeErrChans(a, b chan error) chan error {
	ch := make(chan error, 1)
	go func() {
		err := <-ch
		a <- err
		b <- err
	}()
	return ch
}

func (s *Store) writeSidecar(info ArrayInfo, compressed bool) {
	sc := sidecar{Size: info.Size, BlockSize: info.BlockSize}
	if compressed {
		sc.Codec = codecName(s.cfg.Codec)
	}
	raw, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile(s.metaPath(info.Name), raw, 0o644)
}

// codecName names the configured codec for the sidecar; a store flushing a
// compressed array without a codec records the raw frame codec.
func codecName(c compress.Codec) string {
	if c == nil {
		return compress.Raw{}.Name()
	}
	return c.Name()
}

func (s *Store) metaPath(name string) string {
	return filepath.Join(s.cfg.ScratchDir, name+metaFileSuffix)
}

func (s *Store) handleIODone(st *loopState, m ioDone) {
	ast, ok := st.arrays[m.array]
	if !ok {
		sharedArena.Put(m.data)
		return
	}
	b := s.getBlock(ast, m.block)
	b.fetching = false
	st.stats.IORetries += int64(m.retries)
	s.metrics.ioRetries.Add(int64(m.retries))
	if m.err != nil {
		// The I/O filter already attributed the error (array, block, path,
		// offset, attempts); pass it through.
		for _, w := range b.waiters {
			w.reply <- leaseResult{err: m.err}
		}
		b.waiters = nil
		return
	}
	s.installBlock(st, ast, m.block, b, m.data, false, true)
	if m.codec.framed {
		// Physical disk traffic is the frame; the decoder's output is the
		// logical block.
		st.stats.BytesReadDisk += m.codec.storedBytes
		s.metrics.diskReadBytes.Add(m.codec.storedBytes)
		st.stats.DecompressStoredBytes += m.codec.storedBytes
		st.stats.DecompressRawBytes += m.codec.rawBytes
		cm := s.metrics.codec(m.codec.codecID)
		cm.decStoredBytes.Add(m.codec.storedBytes)
		cm.decRawBytes.Add(m.codec.rawBytes)
	} else {
		st.stats.BytesReadDisk += int64(len(m.data))
		s.metrics.diskReadBytes.Add(int64(len(m.data)))
	}
}

func (s *Store) handleIOWrote(st *loopState, m ioWrote) {
	ast, ok := st.arrays[m.array]
	st.stats.IORetries += int64(m.retries)
	s.metrics.ioRetries.Add(int64(m.retries))
	if ok {
		b := s.getBlock(ast, m.block)
		b.flushing = false
		if m.err == nil {
			b.persistedLocal = true
			n := ast.info.BlockSpan(m.block).Hi - ast.info.BlockSpan(m.block).Lo
			if m.codec.framed {
				n = m.codec.storedBytes
				st.stats.CompressRawBytes += m.codec.rawBytes
				st.stats.CompressStoredBytes += m.codec.storedBytes
				cm := s.metrics.codec(m.codec.codecID)
				cm.encRawBytes.Add(m.codec.rawBytes)
				cm.encStoredBytes.Add(m.codec.storedBytes)
				if m.codec.bailout {
					st.stats.CompressBailouts++
					s.metrics.compressBailouts.Inc()
				}
				if st.stats.CompressStoredBytes > 0 {
					s.metrics.compressRatioPercent.Set(100 * st.stats.CompressRawBytes / st.stats.CompressStoredBytes)
				}
			}
			st.stats.BytesWrittenDisk += n
			s.metrics.diskWriteBytes.Add(n)
			ast.scratchBytes += n
			if ast.quota != nil {
				ast.quota.scratchUsed += n
			}
			// The block just became durable, hence reclaimable: a group
			// over its budget can shed it now.
			s.reclaimQuota(st, ast.quota, "", -1)
			home := s.homeOf(m.array, m.block)
			if home == s.cfg.NodeID {
				s.dirOf(st, blockKey{m.array, m.block}).disk[s.cfg.NodeID] = true
			} else {
				s.peers[home].post(msgNotify{array: m.array, block: m.block, node: s.cfg.NodeID, onDisk: true})
			}
		}
	}
	f, inFlight := st.flushes[m.array]
	if !inFlight {
		return
	}
	f.pending--
	if m.err != nil && f.err == nil {
		f.err = m.err
	}
	if f.pending == 0 {
		delete(st.flushes, m.array)
		f.reply <- f.err
	}
}

func (s *Store) buildMap(st *loopState) ResidencyMap {
	var rm ResidencyMap
	if v, _ := rmPool.Get().(*ResidencyMap); v != nil {
		rm = *v
	} else {
		rm.Blocks = make(map[string][]int, len(st.arrays))
	}
	rm.Budget = s.cfg.MemoryBudget
	// One backing slice serves every array's index list: the map is a
	// snapshot handed to the scheduler, sub-sliced here and never appended
	// to, so per-array allocations would be pure overhead.
	backing := rm.backing[:0]
	for name, ast := range st.arrays {
		start := len(backing)
		for idx, b := range ast.blocks {
			bs := ast.info.BlockSpan(idx)
			if b.buf != nil && b.resident.full(bs.Hi-bs.Lo) {
				backing = append(backing, idx)
			}
			rm.MemUsed += int64(len(b.buf))
		}
		if end := len(backing); end > start {
			idxs := backing[start:end:end]
			sort.Ints(idxs)
			rm.Blocks[name] = idxs
		}
	}
	rm.backing = backing
	return rm
}
