package storage

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dooc/internal/compress"
)

// smoothPayload builds n bytes of float64 data with the byte structure the
// default codec targets (slowly varying values, quantized mantissas).
func smoothPayload(n int) []byte {
	out := make([]byte, n)
	for i := 0; i+8 <= n; i += 8 {
		v := math.Round((1+1e-3*math.Sin(float64(i)/400))*4096) / 4096
		binary.LittleEndian.PutUint64(out[i:], math.Float64bits(v))
	}
	return out
}

// TestCodecSpillRoundTrip flushes an array through the compressed spill
// path, evicts it, and reads it back: the bytes must be identical, the
// scratch layout must be the per-block frame directory, and the physical
// disk traffic must be smaller than the logical block bytes.
func TestCodecSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := NewLocal(Config{
		MemoryBudget: 1 << 20,
		ScratchDir:   dir,
		Seed:         1,
		Codec:        compress.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	payload := smoothPayload(4096)
	const blockSize = 1024
	if err := st.WriteArray("S", payload, blockSize); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush("S"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "S"+blockDirSuffix)); err != nil {
		t.Fatalf("compressed flush did not create the block directory: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "S"+arrayFileSuffix)); err == nil {
		t.Fatal("compressed flush also wrote a raw .arr file")
	}
	for bi := 0; bi < 4; bi++ {
		if err := st.Evict("S", bi); err != nil {
			t.Fatal(err)
		}
	}
	got, err := st.ReadAll("S")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("compressed spill round trip corrupted the payload")
	}

	s := st.Stats()
	if s.CompressRawBytes != int64(len(payload)) {
		t.Errorf("CompressRawBytes = %d, want %d", s.CompressRawBytes, len(payload))
	}
	if s.CompressStoredBytes == 0 || s.CompressStoredBytes >= s.CompressRawBytes {
		t.Errorf("stored %d bytes for %d raw: compression did not shrink the spill", s.CompressStoredBytes, s.CompressRawBytes)
	}
	if s.BytesWrittenDisk != s.CompressStoredBytes {
		t.Errorf("BytesWrittenDisk = %d, want physical frame bytes %d", s.BytesWrittenDisk, s.CompressStoredBytes)
	}
	if s.DecompressRawBytes != int64(len(payload)) {
		t.Errorf("DecompressRawBytes = %d, want %d", s.DecompressRawBytes, len(payload))
	}
	if s.BytesReadDisk != s.DecompressStoredBytes {
		t.Errorf("BytesReadDisk = %d, want physical frame bytes %d", s.BytesReadDisk, s.DecompressStoredBytes)
	}
}

// TestCodecScratchSurvivesRestart closes a store that spilled compressed
// and reopens the scratch directory with a codec-less store: the startup
// scan must discover the frame layout via the sidecar and decode it (frames
// are self-describing).
func TestCodecScratchSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	payload := smoothPayload(2048)
	{
		st, err := NewLocal(Config{
			MemoryBudget: 1 << 20,
			ScratchDir:   dir,
			Seed:         1,
			Codec:        compress.Default(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.WriteArray("R", payload, 512); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush("R"); err != nil {
			t.Fatal(err)
		}
		st.Close()
	}
	st, err := NewLocal(Config{MemoryBudget: 1 << 20, ScratchDir: dir, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got, err := st.ReadAll("R")
	if err != nil {
		t.Fatalf("reading compressed scratch without a codec: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("restart round trip corrupted the payload")
	}
}

// TestCodecBailsOutOnRandomBlocks spills incompressible random data: the
// adaptive encoder must store it raw (bail-out counted), costing only the
// frame header, and the round trip must still be exact.
func TestCodecBailsOutOnRandomBlocks(t *testing.T) {
	dir := t.TempDir()
	st, err := NewLocal(Config{
		MemoryBudget: 1 << 20,
		ScratchDir:   dir,
		Seed:         1,
		Codec:        compress.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	payload := make([]byte, 2048)
	rand.New(rand.NewSource(99)).Read(payload)
	const blockSize = 512
	if err := st.WriteArray("X", payload, blockSize); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush("X"); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if want := int64(len(payload) / blockSize); s.CompressBailouts != want {
		t.Errorf("CompressBailouts = %d, want every random block (%d)", s.CompressBailouts, want)
	}
	if want := int64(len(payload) + 4*compress.FrameHeaderLen); s.CompressStoredBytes != want {
		t.Errorf("stored %d bytes, want raw+headers = %d", s.CompressStoredBytes, want)
	}
	for bi := 0; bi < 4; bi++ {
		if err := st.Evict("X", bi); err != nil {
			t.Fatal(err)
		}
	}
	got, err := st.ReadAll("X")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("bail-out round trip corrupted the payload")
	}
}

// TestCodecDeleteRemovesBlockDir checks Delete cleans up the compressed
// layout alongside the sidecar.
func TestCodecDeleteRemovesBlockDir(t *testing.T) {
	dir := t.TempDir()
	st, err := NewLocal(Config{
		MemoryBudget: 1 << 20,
		ScratchDir:   dir,
		Seed:         1,
		Codec:        compress.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.WriteArray("D", smoothPayload(1024), 256); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush("D"); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("D"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "D"+blockDirSuffix)); !os.IsNotExist(err) {
		t.Fatal("Delete left the compressed block directory behind")
	}
	if _, err := os.Stat(filepath.Join(dir, "D"+metaFileSuffix)); !os.IsNotExist(err) {
		t.Fatal("Delete left the sidecar behind")
	}
}

// TestCodecKeepsRawLayoutForScannedArrays checks layout consistency: an
// array staged raw on disk keeps its `.arr` layout even when the store is
// configured with a codec, so readers and writers never disagree on paths.
func TestCodecKeepsRawLayoutForScannedArrays(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("raw-layout!"), 100)
	if err := os.WriteFile(filepath.Join(dir, "L"+arrayFileSuffix), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := NewLocal(Config{
		MemoryBudget: 1 << 20,
		ScratchDir:   dir,
		Seed:         1,
		Codec:        compress.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got, err := st.ReadAll("L")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("scanned raw array corrupted")
	}
	if st.Stats().CompressStoredBytes != 0 {
		t.Error("raw scanned array went through the encoder")
	}
}
