package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func newTestStore(t *testing.T, budget int64, scratch bool) *Store {
	t.Helper()
	cfg := Config{MemoryBudget: budget, IOWorkers: 2, Seed: 1}
	if scratch {
		cfg.ScratchDir = t.TempDir()
	}
	s, err := NewLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestCreateValidation(t *testing.T) {
	s := newTestStore(t, 1<<20, false)
	if err := s.Create("", 10, 10); err == nil {
		t.Error("empty name accepted")
	}
	if err := s.Create("a", 0, 10); err == nil {
		t.Error("zero size accepted")
	}
	if err := s.Create("a", 10, 0); err == nil {
		t.Error("zero block size accepted")
	}
	if err := s.Create("a", 10, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("a", 10, 4); err == nil {
		t.Error("duplicate create accepted")
	}
	info, err := s.Info("a")
	if err != nil {
		t.Fatal(err)
	}
	if info.NumBlocks() != 3 {
		t.Errorf("NumBlocks = %d, want 3 (10 bytes / 4-byte blocks)", info.NumBlocks())
	}
}

func TestWriteThenRead(t *testing.T) {
	s := newTestStore(t, 1<<20, false)
	if err := s.Create("v", 16, 16); err != nil {
		t.Fatal(err)
	}
	w, err := s.Request("v", 0, 16, PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	copy(w.Data, []byte("0123456789abcdef"))
	w.Release()
	r, err := s.Request("v", 4, 8, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Data) != "4567" {
		t.Errorf("read %q, want 4567", r.Data)
	}
	r.Release()
}

func TestReadBlocksUntilWriteReleased(t *testing.T) {
	s := newTestStore(t, 1<<20, false)
	if err := s.Create("v", 8, 8); err != nil {
		t.Fatal(err)
	}
	w, err := s.Request("v", 0, 8, PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 1)
	go func() {
		r, err := s.Request("v", 0, 8, PermRead)
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		got <- string(r.Data)
		r.Release()
	}()
	select {
	case v := <-got:
		t.Fatalf("read returned %q before the write was released", v)
	case <-time.After(50 * time.Millisecond):
	}
	copy(w.Data, []byte("VISIBLE!"))
	w.Release()
	select {
	case v := <-got:
		if v != "VISIBLE!" {
			t.Fatalf("read %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read did not unblock after write release")
	}
}

func TestImmutabilityViolations(t *testing.T) {
	s := newTestStore(t, 1<<20, false)
	if err := s.Create("v", 16, 16); err != nil {
		t.Fatal(err)
	}
	w, err := s.Request("v", 0, 8, PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	// Overlapping in-flight write.
	if _, err := s.Request("v", 4, 12, PermWrite); err == nil {
		t.Error("overlapping write lease granted")
	}
	// Disjoint in-flight write is fine.
	w2, err := s.Request("v", 8, 16, PermWrite)
	if err != nil {
		t.Fatalf("disjoint write rejected: %v", err)
	}
	w.Release()
	w2.Release()
	// Rewrite after release.
	if _, err := s.Request("v", 0, 4, PermWrite); err == nil {
		t.Error("rewrite of written interval granted")
	}
}

func TestIntervalSpanningBlocksRejected(t *testing.T) {
	s := newTestStore(t, 1<<20, false)
	if err := s.Create("v", 16, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Request("v", 4, 12, PermRead); err == nil || !strings.Contains(err.Error(), "spans blocks") {
		t.Fatalf("err = %v, want spans-blocks error", err)
	}
	if _, err := s.Request("v", 0, 17, PermRead); err == nil {
		t.Error("out-of-range interval accepted")
	}
	if _, err := s.Request("v", 8, 8, PermRead); err == nil {
		t.Error("empty interval accepted")
	}
	if _, err := s.Request("ghost", 0, 1, PermRead); err == nil {
		t.Error("unknown array accepted")
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	s := newTestStore(t, 1<<20, false)
	if err := s.Create("v", 8, 8); err != nil {
		t.Fatal(err)
	}
	w, _ := s.Request("v", 0, 8, PermWrite)
	w.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double release")
		}
	}()
	w.Release()
}

func TestFloat64Helpers(t *testing.T) {
	s := newTestStore(t, 1<<20, false)
	if err := s.Create("x", 8*4, 8*4); err != nil {
		t.Fatal(err)
	}
	w, _ := s.Request("x", 0, 32, PermWrite)
	PutFloat64s(w, []float64{1, -2.5, 3e100, 0})
	w.Release()
	r, _ := s.Request("x", 0, 32, PermRead)
	vals := GetFloat64s(r)
	r.Release()
	if vals[0] != 1 || vals[1] != -2.5 || vals[2] != 3e100 || vals[3] != 0 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestWriteArrayReadAll(t *testing.T) {
	s := newTestStore(t, 1<<20, false)
	data := []byte("the quick brown fox jumps over the lazy dog")
	if err := s.WriteArray("text", data, 7); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadAll("text")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("ReadAll = %q", got)
	}
}

func TestResidencyMap(t *testing.T) {
	s := newTestStore(t, 1<<20, false)
	if err := s.Create("v", 24, 8); err != nil {
		t.Fatal(err)
	}
	// Write blocks 0 and 2, leave 1 unwritten.
	for _, b := range []int{0, 2} {
		w, err := s.RequestBlock("v", b, PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		w.Release()
	}
	m := s.Map()
	if !m.Resident("v", 0) || !m.Resident("v", 2) || m.Resident("v", 1) {
		t.Fatalf("map = %+v", m.Blocks)
	}
	if m.MemUsed != 16 {
		t.Errorf("MemUsed = %d, want 16", m.MemUsed)
	}
}

func TestStatsHitsAndMisses(t *testing.T) {
	s := newTestStore(t, 1<<20, true)
	data := bytes.Repeat([]byte("z"), 64)
	if err := s.WriteArray("a", data, 64); err != nil {
		t.Fatal(err)
	}
	r, _ := s.Request("a", 0, 8, PermRead)
	r.Release()
	st := s.Stats()
	if st.Hits < 1 {
		t.Errorf("hits = %d, want >= 1", st.Hits)
	}
}

func TestScratchScanAndImplicitRead(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("hello out-of-core world, this file was here first")
	if err := os.WriteFile(filepath.Join(dir, "pre"+arrayFileSuffix), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewLocal(Config{MemoryBudget: 1 << 20, ScratchDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, err := s.ReadAll("pre")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("ReadAll = %q", got)
	}
	st := s.Stats()
	if st.ImplicitDiskReads != 1 {
		t.Errorf("implicit disk reads = %d, want 1", st.ImplicitDiskReads)
	}
	if st.BytesReadDisk != int64(len(payload)) {
		t.Errorf("bytes read = %d, want %d", st.BytesReadDisk, len(payload))
	}
}

func TestFlushPersistsAndSidecarRestoresBlocks(t *testing.T) {
	dir := t.TempDir()
	s, err := NewLocal(Config{MemoryBudget: 1 << 20, ScratchDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("0123456789"), 10) // 100 bytes
	if err := s.WriteArray("arr", data, 32); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush("arr"); err != nil {
		t.Fatal(err)
	}
	if s.Stats().BytesWrittenDisk < 100 {
		t.Errorf("bytes written = %d", s.Stats().BytesWrittenDisk)
	}
	s.Close()

	// A fresh store scans the scratch dir and restores the block structure.
	s2, err := NewLocal(Config{MemoryBudget: 1 << 20, ScratchDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	info, err := s2.Info("arr")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 100 || info.BlockSize != 32 {
		t.Fatalf("restored info = %+v", info)
	}
	got, err := s2.ReadAll("arr")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("restored data mismatch")
	}
}

func TestLRUEvictionUnderPressure(t *testing.T) {
	dir := t.TempDir()
	// Budget fits two 64-byte blocks.
	s, err := NewLocal(Config{MemoryBudget: 128, ScratchDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mk := func(name string) {
		if err := s.WriteArray(name, bytes.Repeat([]byte(name[:1]), 64), 64); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(name); err != nil {
			t.Fatal(err)
		}
	}
	mk("a")
	mk("b")
	mk("c") // allocating c pushes memory to 192 > 128: a (LRU) must go
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under pressure: %+v", st)
	}
	if st.MemUsed > 128 {
		t.Errorf("MemUsed = %d > budget 128", st.MemUsed)
	}
	// Evicted data is transparently re-read from scratch.
	got, err := s.ReadAll("a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte("a"), 64)) {
		t.Fatal("re-read after eviction mismatch")
	}
}

func TestUnpersistedBlocksAreNeverEvicted(t *testing.T) {
	// No scratch dir: nothing is ever durable, so nothing may be evicted
	// even over budget (the paper's rule), and the over-budget counter ticks.
	s := newTestStore(t, 64, false)
	for _, name := range []string{"a", "b", "c"} {
		if err := s.WriteArray(name, bytes.Repeat([]byte(name[:1]), 64), 64); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions != 0 {
		t.Fatalf("evicted %d unpersisted blocks", st.Evictions)
	}
	if st.OverBudgetAllocs == 0 {
		t.Error("over-budget allocations not recorded")
	}
	// All data still readable.
	for _, name := range []string{"a", "b", "c"} {
		got, err := s.ReadAll(name)
		if err != nil || len(got) != 64 {
			t.Fatalf("%s: %v len=%d", name, err, len(got))
		}
	}
}

func TestPinnedBlocksSurviveEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := NewLocal(Config{MemoryBudget: 64, ScratchDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.WriteArray("pinned", bytes.Repeat([]byte("p"), 64), 64); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush("pinned"); err != nil {
		t.Fatal(err)
	}
	r, err := s.Request("pinned", 0, 64, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	// Allocate more arrays to force pressure; "pinned" must not be evicted
	// while the read lease is held.
	for _, name := range []string{"x", "y"} {
		if err := s.WriteArray(name, bytes.Repeat([]byte(name[:1]), 64), 64); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(name); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(r.Data, bytes.Repeat([]byte("p"), 64)) {
		t.Fatal("pinned data corrupted under pressure")
	}
	if !s.Map().Resident("pinned", 0) {
		t.Fatal("pinned block evicted while leased")
	}
	r.Release()
}

func TestDeleteSemantics(t *testing.T) {
	s := newTestStore(t, 1<<20, false)
	if err := s.WriteArray("d", []byte("data"), 4); err != nil {
		t.Fatal(err)
	}
	r, _ := s.Request("d", 0, 4, PermRead)
	if err := s.Delete("d"); err == nil {
		t.Fatal("delete succeeded with outstanding lease")
	}
	r.Release()
	if err := s.Delete("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Request("d", 0, 4, PermRead); err == nil {
		t.Fatal("deleted array still readable")
	}
	if err := s.Delete("d"); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestPrefetchWarmsCache(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("w"), 256)
	if err := os.WriteFile(filepath.Join(dir, "warm"+arrayFileSuffix), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewLocal(Config{MemoryBudget: 1 << 20, ScratchDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Prefetch("warm", 0, 256)
	// Wait for the prefetch to land.
	deadline := time.Now().Add(2 * time.Second)
	for !s.Map().Resident("warm", 0) {
		if time.Now().After(deadline) {
			t.Fatal("prefetch never landed")
		}
		time.Sleep(time.Millisecond)
	}
	r, err := s.Request("warm", 0, 8, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	r.Release()
	st := s.Stats()
	if st.Hits == 0 {
		t.Error("request after prefetch was not a hit")
	}
	if st.PrefetchIssued != 1 {
		t.Errorf("PrefetchIssued = %d", st.PrefetchIssued)
	}
}

func TestCorruptScratchReadFails(t *testing.T) {
	dir := t.TempDir()
	// Sidecar claims 100 bytes, payload has 10: the read must error, not hang.
	if err := os.WriteFile(filepath.Join(dir, "bad"+arrayFileSuffix), []byte("short file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad"+metaFileSuffix), []byte(`{"size":100,"block_size":100}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewLocal(Config{MemoryBudget: 1 << 20, ScratchDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Request("bad", 0, 100, PermRead); err == nil {
		t.Fatal("truncated file read succeeded")
	}
}

func TestCloseFailsPendingRequests(t *testing.T) {
	s, err := NewLocal(Config{MemoryBudget: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Create("never", 8, 8); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := s.Request("never", 0, 8, PermRead)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending request not failed on close")
	}
}

func TestExplicitEvict(t *testing.T) {
	dir := t.TempDir()
	s, err := NewLocal(Config{MemoryBudget: 1 << 20, ScratchDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	data := bytes.Repeat([]byte("e"), 128)
	if err := s.WriteArray("ev", data, 128); err != nil {
		t.Fatal(err)
	}
	// Unpersisted sole copy: eviction must refuse.
	if err := s.Evict("ev", 0); err == nil {
		t.Fatal("evicted the only copy of unpersisted data")
	}
	if err := s.Flush("ev"); err != nil {
		t.Fatal(err)
	}
	// Leased: refuse.
	l, err := s.Request("ev", 0, 8, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Evict("ev", 0); err == nil {
		t.Fatal("evicted a leased block")
	}
	l.Release()
	// Now legal.
	if err := s.Evict("ev", 0); err != nil {
		t.Fatal(err)
	}
	if s.Map().Resident("ev", 0) {
		t.Fatal("block still resident after explicit evict")
	}
	// Idempotent.
	if err := s.Evict("ev", 0); err != nil {
		t.Fatalf("second evict: %v", err)
	}
	// Data transparently reloads from scratch.
	got, err := s.ReadAll("ev")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reload after explicit evict mismatch")
	}
	// Unknown array errors.
	if err := s.Evict("ghost", 0); err == nil {
		t.Fatal("evict of unknown array succeeded")
	}
}

// TestEvictionPolicies: on a cyclic scan larger than memory, LRU thrashes
// (every access misses) while MRU retains a stable subset — the classic
// result the paper's back-and-forth reordering works around.
func TestEvictionPolicies(t *testing.T) {
	const blocks, rounds = 4, 6
	run := func(policy EvictionPolicy) (hits int64) {
		dir := t.TempDir()
		s, err := NewLocal(Config{
			MemoryBudget: 2 * 64, // two 64-byte blocks
			ScratchDir:   dir,
			Eviction:     policy,
			Seed:         1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		for i := 0; i < blocks; i++ {
			name := fmt.Sprintf("b%d", i)
			if err := s.WriteArray(name, bytes.Repeat([]byte{byte(i)}, 64), 64); err != nil {
				t.Fatal(err)
			}
			if err := s.Flush(name); err != nil {
				t.Fatal(err)
			}
		}
		before := s.Stats().Hits
		for r := 0; r < rounds; r++ {
			for i := 0; i < blocks; i++ {
				l, err := s.Request(fmt.Sprintf("b%d", i), 0, 64, PermRead)
				if err != nil {
					t.Fatal(err)
				}
				l.Release()
			}
		}
		return s.Stats().Hits - before
	}
	lru := run(EvictLRU)
	mru := run(EvictMRU)
	fifo := run(EvictFIFO)
	if mru <= lru {
		t.Fatalf("MRU hits (%d) not better than LRU (%d) on cyclic scan", mru, lru)
	}
	// FIFO equals LRU on a pure cyclic scan.
	if fifo != lru {
		t.Fatalf("FIFO hits (%d) != LRU hits (%d) on cyclic scan", fifo, lru)
	}
}
