//go:build doocdebug

package storage

import (
	"math"
	"testing"
)

// TestUseAfterReleasePoisonsView exercises the doocdebug view-lifetime
// enforcement: a Float64View must stop validating the moment its lease is
// released, and reads through the stale slice must return the poison NaN
// instead of whatever the arena recycled the buffer into.
func TestUseAfterReleasePoisonsView(t *testing.T) {
	s, err := NewLocal(Config{MemoryBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	vals := make([]float64, 512)
	for i := range vals {
		vals[i] = float64(i) * 0.5
	}
	buf := make([]byte, 8*len(vals))
	EncodeFloat64s(buf, vals)
	if err := s.WriteArray("v", buf, int64(len(buf))); err != nil {
		t.Fatal(err)
	}

	l, err := s.Request("v", 0, int64(len(buf)), PermRead)
	if err != nil {
		t.Fatal(err)
	}
	v := Float64View(l)
	if !ViewValid(v) {
		t.Fatal("fresh view reported invalid")
	}
	for i := range vals {
		if v[i] != vals[i] {
			t.Fatalf("v[%d] = %v, want %v", i, v[i], vals[i])
		}
	}

	l.Release()
	if ViewValid(v) {
		t.Fatal("view still reported valid after lease release")
	}
	for i := range v {
		if !math.IsNaN(v[i]) {
			t.Fatalf("v[%d] = %v after release, want poison NaN", i, v[i])
		}
	}
}

// TestAbandonPoisonsView checks the error path too: reclaiming a lease via
// Abandon must invalidate views the same way Release does.
func TestAbandonPoisonsView(t *testing.T) {
	s, err := NewLocal(Config{MemoryBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	vals := []float64{1, 2, 3, 4}
	buf := make([]byte, 8*len(vals))
	EncodeFloat64s(buf, vals)
	if err := s.WriteArray("w", buf, int64(len(buf))); err != nil {
		t.Fatal(err)
	}
	l, err := s.Request("w", 0, int64(len(buf)), PermRead)
	if err != nil {
		t.Fatal(err)
	}
	v := Float64View(l)
	l.Abandon()
	if ViewValid(v) {
		t.Fatal("view still reported valid after abandon")
	}
	if !math.IsNaN(v[0]) {
		t.Fatalf("v[0] = %v after abandon, want poison NaN", v[0])
	}
}
