package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentClientsStress hammers a 4-node network from many goroutines
// doing create/write/read/prefetch/flush/delete with verification. Run with
// -race to exercise the actor-model synchronization.
func TestConcurrentClientsStress(t *testing.T) {
	const nodes, clients, arraysPerClient = 4, 8, 6
	stores, err := NewNetwork(nodes, func(node int, cfg *Config) {
		cfg.MemoryBudget = 64 << 10 // 64 KiB: intense eviction pressure
		cfg.ScratchDir = t.TempDir()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, clients*arraysPerClient*4)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			home := stores[c%nodes]
			for a := 0; a < arraysPerClient; a++ {
				name := fmt.Sprintf("stress-%d-%d", c, a)
				blockSize := int64(256 + rng.Intn(1024))
				blocks := 1 + rng.Intn(5)
				size := blockSize * int64(blocks)
				if err := home.Create(name, size, blockSize); err != nil {
					errs <- err
					return
				}
				// Write every block with a recognizable pattern.
				info := ArrayInfo{Name: name, Size: size, BlockSize: blockSize}
				for b := 0; b < info.NumBlocks(); b++ {
					bs := info.BlockSpan(b)
					w, err := home.Request(name, bs.Lo, bs.Hi, PermWrite)
					if err != nil {
						errs <- err
						return
					}
					for i := range w.Data {
						w.Data[i] = byte(b)
					}
					binary.LittleEndian.PutUint32(w.Data, uint32(c*1000+a))
					w.Release()
				}
				// Random peers read it back, including sub-intervals.
				for trial := 0; trial < 3; trial++ {
					reader := stores[rng.Intn(nodes)]
					b := rng.Intn(info.NumBlocks())
					bs := info.BlockSpan(b)
					lo := bs.Lo + int64(rng.Intn(int(bs.Hi-bs.Lo)))
					hi := lo + 1 + int64(rng.Intn(int(bs.Hi-lo)))
					l, err := reader.Request(name, lo, hi, PermRead)
					if err != nil {
						errs <- fmt.Errorf("%s [%d,%d): %w", name, lo, hi, err)
						return
					}
					for i, v := range l.Data {
						off := lo + int64(i) - bs.Lo
						if off >= 4 && v != byte(b) {
							errs <- fmt.Errorf("%s block %d byte %d = %d, want %d", name, b, off, v, b)
							l.Release()
							return
						}
					}
					l.Release()
					if rng.Intn(3) == 0 {
						reader.Prefetch(name, bs.Lo, bs.Hi)
					}
				}
				if rng.Intn(2) == 0 {
					if err := home.Flush(name); err != nil {
						errs <- err
						return
					}
				}
				if rng.Intn(4) == 0 {
					// Deletion may race against in-flight prefetches; only
					// hard failures matter, "still leased/in flight" is an
					// acceptable race outcome.
					_ = home.Delete(name)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMultiBlockArrayThroughNetwork verifies block-granular remote fetches:
// a peer reading one interval must pull only that block, not the array.
func TestMultiBlockArrayThroughNetwork(t *testing.T) {
	stores, err := NewNetwork(2, func(node int, cfg *Config) {
		cfg.MemoryBudget = 1 << 20
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	const blockSize, blocks = 128, 8
	payload := bytes.Repeat([]byte("0123456789abcdef"), blockSize*blocks/16)
	if err := stores[0].WriteArray("striped", payload, blockSize); err != nil {
		t.Fatal(err)
	}
	// Peer reads one interval inside block 5.
	lo := int64(5*blockSize + 10)
	l, err := stores[1].Request("striped", lo, lo+16, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(l.Data, payload[lo:lo+16]) {
		t.Fatalf("data mismatch: %q", l.Data)
	}
	l.Release()
	if got := stores[1].Stats().BytesFetchedPeer; got != blockSize {
		t.Fatalf("fetched %d bytes, want exactly one block (%d)", got, blockSize)
	}
	// Residency on node 1 shows only block 5.
	m := stores[1].Map()
	if !m.Resident("striped", 5) {
		t.Fatal("block 5 not resident after fetch")
	}
	for b := 0; b < blocks; b++ {
		if b != 5 && m.Resident("striped", b) {
			t.Fatalf("block %d resident without being requested", b)
		}
	}
}
