package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestPooledBufferHammer drives many goroutines through the pooled-buffer
// hot path — lease grant, zero-copy view, read, release — against a memory
// budget tight enough to force eviction and arena recycling underneath the
// readers. Each array is filled with a distinct constant, so a buffer
// recycled while still viewed shows up as a wrong value, and the race
// detector (make race runs this package with -race) catches unsynchronized
// reuse.
func TestPooledBufferHammer(t *testing.T) {
	const (
		arrays    = 4
		elems     = 1024
		arrayBy   = 8 * elems
		goroutine = 8
	)
	iters := 300
	if testing.Short() {
		iters = 50
	}
	// Budget holds two arrays: every read of a third forces an eviction and
	// a read-through from scratch, recycling buffers through the arena.
	s, err := NewLocal(Config{MemoryBudget: 2*arrayBy + 1<<10, ScratchDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for a := 0; a < arrays; a++ {
		vals := make([]float64, elems)
		for i := range vals {
			vals[i] = float64(a + 1)
		}
		buf := make([]byte, arrayBy)
		EncodeFloat64s(buf, vals)
		name := fmt.Sprintf("h%d", a)
		if err := s.WriteArray(name, buf, arrayBy); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(name); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutine)
	for g := 0; g < goroutine; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				a := rng.Intn(arrays)
				name := fmt.Sprintf("h%d", a)
				l, err := s.Request(name, 0, arrayBy, PermRead)
				if err != nil {
					errs <- fmt.Errorf("request %s: %w", name, err)
					return
				}
				v := Float64View(l)
				want := float64(a + 1)
				for j := 0; j < elems; j += 97 {
					if v[j] != want {
						l.Release()
						errs <- fmt.Errorf("%s[%d] = %v, want %v (buffer recycled under a live view?)", name, j, v[j], want)
						return
					}
				}
				l.Release()
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
