package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func newTestNetwork(t *testing.T, n int, budget int64, scratch bool) []*Store {
	t.Helper()
	stores, err := NewNetwork(n, func(node int, cfg *Config) {
		cfg.MemoryBudget = budget
		if scratch {
			cfg.ScratchDir = filepath.Join(t.TempDir(), fmt.Sprintf("node%d", node))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, s := range stores {
			s.Close()
		}
	})
	return stores
}

func TestCreateVisibleEverywhere(t *testing.T) {
	stores := newTestNetwork(t, 4, 1<<20, false)
	if err := stores[2].Create("shared", 128, 64); err != nil {
		t.Fatal(err)
	}
	for i, s := range stores {
		info, err := s.Info("shared")
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if info.Size != 128 {
			t.Fatalf("node %d: info = %+v", i, info)
		}
	}
	// Duplicate create from another node is rejected.
	if err := stores[0].Create("shared", 128, 64); err == nil {
		t.Fatal("duplicate create accepted")
	}
}

func TestRemoteReadAfterRemoteWrite(t *testing.T) {
	stores := newTestNetwork(t, 3, 1<<20, false)
	if err := stores[0].Create("v", 64, 64); err != nil {
		t.Fatal(err)
	}
	w, err := stores[0].Request("v", 0, 64, PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	copy(w.Data, bytes.Repeat([]byte("R"), 64))
	w.Release()
	// Another node reads: the block must be located via probe/home and
	// fetched.
	r, err := stores[2].Request("v", 16, 32, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Data, bytes.Repeat([]byte("R"), 16)) {
		t.Fatalf("remote read = %q", r.Data)
	}
	r.Release()
	if stores[2].Stats().BytesFetchedPeer != 64 {
		t.Errorf("BytesFetchedPeer = %d, want 64", stores[2].Stats().BytesFetchedPeer)
	}
}

func TestRemoteReadBlocksUntilWritten(t *testing.T) {
	stores := newTestNetwork(t, 3, 1<<20, false)
	if err := stores[0].Create("late", 32, 32); err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	go func() {
		r, err := stores[1].Request("late", 0, 32, PermRead)
		if err != nil {
			got <- nil
			return
		}
		data := append([]byte(nil), r.Data...)
		r.Release()
		got <- data
	}()
	select {
	case <-got:
		t.Fatal("read completed before any write")
	case <-time.After(50 * time.Millisecond):
	}
	w, err := stores[2].Request("late", 0, 32, PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	copy(w.Data, bytes.Repeat([]byte("L"), 32))
	w.Release()
	select {
	case data := <-got:
		if !bytes.Equal(data, bytes.Repeat([]byte("L"), 32)) {
			t.Fatalf("read %q", data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("remote read never unblocked after write")
	}
}

func TestRemoteFetchFromDisk(t *testing.T) {
	// Node 0 has the array on its scratch disk; node 1 reads it through the
	// network (the testbed's I/O-node pattern).
	dirs := make([]string, 2)
	base := t.TempDir()
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("node%d", i))
		if err := os.MkdirAll(dirs[i], 0o755); err != nil {
			t.Fatal(err)
		}
	}
	payload := bytes.Repeat([]byte("D"), 512)
	if err := os.WriteFile(filepath.Join(dirs[0], "ondisk"+arrayFileSuffix), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	stores, err := NewNetwork(2, func(node int, cfg *Config) {
		cfg.MemoryBudget = 1 << 20
		cfg.ScratchDir = dirs[node]
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	got, err := stores[1].ReadAll("ondisk")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("remote disk fetch mismatch")
	}
	if stores[1].Stats().BytesFetchedPeer != 512 {
		t.Errorf("BytesFetchedPeer = %d, want 512", stores[1].Stats().BytesFetchedPeer)
	}
	if stores[0].Stats().ImplicitDiskReads == 0 {
		t.Error("holder did not perform an implicit disk read")
	}
}

func TestLedgerAccountsCrossNodeTraffic(t *testing.T) {
	var mu sync.Mutex
	moved := int64(0)
	stores, err := NewNetwork(2, func(node int, cfg *Config) {
		cfg.MemoryBudget = 1 << 20
		cfg.Ledger = func(from, to int, bytes int64) {
			mu.Lock()
			moved += bytes
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	if err := stores[0].WriteArray("t", bytes.Repeat([]byte("x"), 256), 256); err != nil {
		t.Fatal(err)
	}
	if _, err := stores[1].ReadAll("t"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if moved != 256 {
		t.Fatalf("ledger moved = %d, want 256", moved)
	}
}

func TestManyNodesManyBlocksAllReadable(t *testing.T) {
	const nodes = 5
	stores := newTestNetwork(t, nodes, 1<<20, false)
	// Each node writes its own array; every node then reads every array.
	for i, s := range stores {
		name := fmt.Sprintf("arr%d", i)
		if err := s.WriteArray(name, bytes.Repeat([]byte{byte('0' + i)}, 200), 50); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, nodes*nodes)
	for _, s := range stores {
		for j := 0; j < nodes; j++ {
			wg.Add(1)
			go func(s *Store, j int) {
				defer wg.Done()
				want := bytes.Repeat([]byte{byte('0' + j)}, 200)
				got, err := s.ReadAll(fmt.Sprintf("arr%d", j))
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("node %d arr%d mismatch", s.NodeID(), j)
				}
			}(s, j)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestEvictionThenRemoteRefetch(t *testing.T) {
	// Node 1 fetches a block from node 0, evicts it under pressure, then
	// refetches it successfully.
	stores, err := NewNetwork(2, func(node int, cfg *Config) {
		cfg.MemoryBudget = 96 // fits one 64-byte block + slack
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	if err := stores[0].WriteArray("a", bytes.Repeat([]byte("a"), 64), 64); err != nil {
		t.Fatal(err)
	}
	if err := stores[0].WriteArray("b", bytes.Repeat([]byte("b"), 64), 64); err != nil {
		t.Fatal(err)
	}
	// Fetch a then b on node 1: b's arrival evicts a (remote-backed).
	if _, err := stores[1].ReadAll("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := stores[1].ReadAll("b"); err != nil {
		t.Fatal(err)
	}
	if stores[1].Stats().Evictions == 0 {
		t.Fatal("expected eviction on node 1")
	}
	// Refetch a.
	got, err := stores[1].ReadAll("a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte("a"), 64)) {
		t.Fatal("refetch mismatch")
	}
}

func TestDistributedDelete(t *testing.T) {
	stores := newTestNetwork(t, 3, 1<<20, false)
	if err := stores[0].WriteArray("gone", []byte("abcd"), 4); err != nil {
		t.Fatal(err)
	}
	if _, err := stores[1].ReadAll("gone"); err != nil {
		t.Fatal(err)
	}
	if err := stores[2].Delete("gone"); err != nil {
		t.Fatal(err)
	}
	for i, s := range stores {
		if _, err := s.Info("gone"); err == nil {
			t.Errorf("node %d still knows deleted array", i)
		}
	}
}

func TestRandomProbeStatsAdvance(t *testing.T) {
	stores := newTestNetwork(t, 4, 1<<20, false)
	if err := stores[0].WriteArray("p", bytes.Repeat([]byte("p"), 128), 128); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if _, err := stores[i].ReadAll("p"); err != nil {
			t.Fatal(err)
		}
	}
	probes := int64(0)
	for _, s := range stores {
		probes += s.Stats().PeerProbes
	}
	if probes == 0 {
		t.Fatal("no random-peer probes were issued")
	}
}
