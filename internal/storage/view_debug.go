//go:build doocdebug

package storage

import (
	"math"
	"sync"
	"unsafe"
)

// doocdebug build: view-lifetime enforcement. Every Float64View becomes a
// tracked decoded copy registered against its lease; Release/Abandon fills
// the copy with a poison NaN and marks it invalid, so a use-after-release
// bug produces loud NaNs (and a false ViewValid) in tests instead of
// silently reading whatever block the arena recycled the buffer into.
// Float64WriteView reports unavailable, forcing executors down the
// scratch+PutFloat64s fallback — which keeps the bit-identity tests
// meaningful for that path too.

// viewDebugForceCopy routes every view through the tracked-copy path.
const viewDebugForceCopy = true

// viewPoison is a quiet NaN with a recognizable payload.
var viewPoison = math.Float64frombits(0x7FF8_DEAD_DEAD_DEAD)

var viewDebug struct {
	mu sync.Mutex
	// live maps a view's backing-array pointer to the lease it aliases.
	live map[*float64]*Lease
	// dead records backing arrays whose lease has been released.
	dead map[*float64]bool
}

func viewKey(v []float64) *float64 {
	if cap(v) == 0 {
		return nil
	}
	return unsafe.SliceData(v)
}

// viewDebugMake builds a tracked decoded copy for the lease.
func viewDebugMake(l *Lease) ([]float64, bool) {
	v := DecodeFloat64s(l.Data)
	if k := viewKey(v); k != nil {
		viewDebug.mu.Lock()
		if viewDebug.live == nil {
			viewDebug.live = make(map[*float64]*Lease)
			viewDebug.dead = make(map[*float64]bool)
		}
		viewDebug.live[k] = l
		viewDebug.mu.Unlock()
	}
	return v, true
}

// invalidateViews poisons every view minted from l.
func invalidateViews(l *Lease) {
	viewDebug.mu.Lock()
	defer viewDebug.mu.Unlock()
	for k, owner := range viewDebug.live {
		if owner != l {
			continue
		}
		delete(viewDebug.live, k)
		viewDebug.dead[k] = true
		// Poison the whole copy (its length is the lease span) so stale
		// reads scream.
		n := int(l.Hi-l.Lo) / 8
		for i, s := 0, unsafe.Slice(k, n); i < n; i++ {
			s[i] = viewPoison
		}
	}
}

// ViewValid reports whether v is still backed by an unreleased lease. A
// slice that never was a view (or an empty one) is vacuously valid.
func ViewValid(v []float64) bool {
	k := viewKey(v)
	if k == nil {
		return true
	}
	viewDebug.mu.Lock()
	defer viewDebug.mu.Unlock()
	if viewDebug.dead[k] {
		return false
	}
	return true
}
