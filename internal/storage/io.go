package storage

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"dooc/internal/compress"
)

// ioJob is one unit of file-system work for the asynchronous I/O filters.
type ioJob struct {
	write bool
	array string
	block int
	path  string
	off   int64
	// read: logical length of the block; write: payload.
	length int64
	data   []byte
	// codec, on a write, compresses the payload into an adaptive frame
	// before it hits the disk. Encoding runs in the I/O filter, off the
	// actor loop, so blocks compress in parallel.
	codec compress.Codec
	// framed, on a read, marks the file as one self-describing frame: the
	// filter reads the whole file and decodes it (no codec needed — the
	// frame names its own).
	framed bool
}

// ioPool is the set of I/O filter goroutines attached to one storage
// filter. The paper: "Interactions with the filesystem (both read and
// write) are performed by a separate I/O filter ... There should be as many
// I/O filters as is necessary to efficiently use the parallelism contained
// in the I/O subsystem of the machine."
type ioPool struct {
	store   *Store
	workers int
	jobs    *mailbox
	wg      sync.WaitGroup
}

func newIOPool(workers int, s *Store) *ioPool {
	return &ioPool{store: s, workers: workers, jobs: newMailbox()}
}

func (p *ioPool) start() {
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go p.worker(i)
	}
}

func (p *ioPool) stop() {
	p.jobs.close()
	p.wg.Wait()
}

// read schedules an asynchronous block read; completion posts ioDone.
// framed reads expect a whole-file compress frame at path.
func (p *ioPool) read(array string, block int, path string, off, length int64, framed bool) {
	p.store.metrics.ioQueueDepth.Add(1)
	p.jobs.put(ioJob{array: array, block: block, path: path, off: off, length: length, framed: framed})
}

// write schedules an asynchronous block write-back; completion posts
// ioWrote. A non-nil codec spills the block as an adaptive frame.
func (p *ioPool) write(array string, block int, path string, off int64, data []byte, codec compress.Codec) {
	p.store.metrics.ioQueueDepth.Add(1)
	p.jobs.put(ioJob{write: true, array: array, block: block, path: path, off: off, data: data, codec: codec})
}

func (p *ioPool) worker(idx int) {
	defer p.wg.Done()
	for {
		item, ok := p.jobs.get()
		if !ok {
			return
		}
		j := item.(ioJob)
		p.store.metrics.ioQueueDepth.Add(-1)
		start := time.Now()
		if j.write {
			var cs codecStats
			var frameBuf []byte
			if j.codec != nil {
				encStart := time.Now()
				// Encode into a pooled buffer; it is recycled after the write
				// lands (the completion message carries no payload).
				dst := sharedArena.Get(compress.FrameHeaderLen + len(j.data) + len(j.data)/8 + 64)[:0]
				frame, used := compress.AppendFrameAdaptive(dst, j.codec, j.data)
				p.store.metrics.encodeSeconds.Observe(time.Since(encStart).Seconds())
				cs = codecStats{
					framed:      true,
					codecID:     used.ID(),
					rawBytes:    int64(len(j.data)),
					storedBytes: int64(len(frame)),
					bailout:     used.ID() != j.codec.ID(),
				}
				j.data = frame
				frameBuf = frame
			}
			err, retries := p.attempt(j)
			sharedArena.Put(frameBuf)
			p.store.metrics.ioWriteSeconds.Observe(time.Since(start).Seconds())
			p.store.traceIO("spill", j.array, j.block, idx, start, time.Now(), err)
			p.store.post(ioWrote{array: j.array, block: j.block, err: err, retries: retries, codec: cs})
		} else {
			var data []byte
			var cs codecStats
			err, retries := p.attemptRead(j, &data, &cs)
			p.store.metrics.ioReadSeconds.Observe(time.Since(start).Seconds())
			p.store.traceIO("load", j.array, j.block, idx, start, time.Now(), err)
			p.store.post(ioDone{array: j.array, block: j.block, data: data, err: err, retries: retries, codec: cs})
		}
	}
}

// attempt runs one write job under the retry policy.
func (p *ioPool) attempt(j ioJob) (error, int) {
	var err error
	retries := 0
	for try := 0; ; try++ {
		err = p.store.cfg.Faults.IO("write", j.path)
		if err == nil {
			err = writeAt(j.path, j.off, j.data)
		}
		if err == nil {
			return nil, retries
		}
		if try >= p.store.cfg.IORetries || !transientIOErr(err) {
			return fmt.Errorf("storage: writing %q block %d to %s at offset %d (%d attempt(s)): %w",
				j.array, j.block, j.path, j.off, try+1, err), retries
		}
		retries++
		time.Sleep(p.retrySleep(try))
	}
}

// attemptRead runs one read job under the retry policy. For framed jobs it
// also decodes the frame, inside the loop, so a decode failure is
// classified and attributed exactly like a device failure (it is
// non-transient: bad bytes on disk do not improve with retries).
func (p *ioPool) attemptRead(j ioJob, out *[]byte, cs *codecStats) (error, int) {
	var err error
	retries := 0
	for try := 0; ; try++ {
		err = p.store.cfg.Faults.IO("read", j.path)
		if err == nil {
			if j.framed {
				err = p.readFramed(j, out, cs)
			} else {
				*out, err = readAt(j.path, j.off, j.length)
			}
		}
		if err == nil {
			return nil, retries
		}
		if try >= p.store.cfg.IORetries || !transientIOErr(err) {
			return fmt.Errorf("storage: reading %q block %d from %s at offset %d (%d attempt(s)): %w",
				j.array, j.block, j.path, j.off, try+1, err), retries
		}
		retries++
		time.Sleep(p.retrySleep(try))
	}
}

// retrySleep is the backoff before retry try+1: exponential in try with
// "equal jitter" — uniform in [d/2, d) where d is the deterministic delay.
// The jitter decorrelates workers that failed on the same transient fault,
// so they do not reconverge on the device in a synchronized retry storm.
func (p *ioPool) retrySleep(try int) time.Duration {
	d := p.store.cfg.IORetryBackoff << uint(try)
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// readFramed reads a whole-file compress frame and decodes it. The frame's
// internal CRC guarantees a truncated or bit-flipped file surfaces as an
// error, never as wrong block bytes.
func (p *ioPool) readFramed(j ioJob, out *[]byte, cs *codecStats) error {
	f, err := os.Open(j.path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	// The frame is transient — read it into a pooled buffer and recycle it
	// once decoded (no codec retains its input).
	frame := sharedArena.Get(int(fi.Size()))
	defer sharedArena.Put(frame)
	if _, err := io.ReadFull(f, frame); err != nil {
		return err
	}
	decStart := time.Now()
	data, used, err := compress.DecodeFrame(frame)
	if err != nil {
		return err
	}
	p.store.metrics.decodeSeconds.Observe(time.Since(decStart).Seconds())
	if int64(len(data)) != j.length {
		return fmt.Errorf("%w: frame decodes to %d bytes, block is %d", compress.ErrCorrupt, len(data), j.length)
	}
	*out = data
	*cs = codecStats{
		framed:      true,
		codecID:     used.ID(),
		rawBytes:    int64(len(data)),
		storedBytes: int64(len(frame)),
	}
	return nil
}

// transientIOErr classifies an I/O failure for the retry policy. A missing
// file, a short read, or a corrupt frame is a fact about the data, not a
// flaky device — retrying would only delay the inevitable. Everything else
// (injected faults, EIO-style device errors) is worth another attempt.
func transientIOErr(err error) bool {
	switch {
	case errors.Is(err, os.ErrNotExist),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, compress.ErrCorrupt):
		return false
	}
	return true
}

func readAt(path string, off, length int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data := sharedArena.Get(int(length))
	n, err := f.ReadAt(data, off)
	if err != nil && !(err == io.EOF && int64(n) == length) {
		sharedArena.Put(data)
		return nil, fmt.Errorf("read %d bytes at %d: %w", length, off, err)
	}
	return data, nil
}

func writeAt(path string, off int64, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, off); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
