package storage

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// ioJob is one unit of file-system work for the asynchronous I/O filters.
type ioJob struct {
	write bool
	array string
	block int
	path  string
	off   int64
	// read: length of the block; write: payload.
	length int64
	data   []byte
}

// ioPool is the set of I/O filter goroutines attached to one storage
// filter. The paper: "Interactions with the filesystem (both read and
// write) are performed by a separate I/O filter ... There should be as many
// I/O filters as is necessary to efficiently use the parallelism contained
// in the I/O subsystem of the machine."
type ioPool struct {
	store   *Store
	workers int
	jobs    *mailbox
	wg      sync.WaitGroup
}

func newIOPool(workers int, s *Store) *ioPool {
	return &ioPool{store: s, workers: workers, jobs: newMailbox()}
}

func (p *ioPool) start() {
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
}

func (p *ioPool) stop() {
	p.jobs.close()
	p.wg.Wait()
}

// read schedules an asynchronous block read; completion posts ioDone.
func (p *ioPool) read(array string, block int, path string, off, length int64) {
	p.jobs.put(ioJob{array: array, block: block, path: path, off: off, length: length})
}

// write schedules an asynchronous block write-back; completion posts ioWrote.
func (p *ioPool) write(array string, block int, path string, off int64, data []byte) {
	p.jobs.put(ioJob{write: true, array: array, block: block, path: path, off: off, data: data})
}

func (p *ioPool) worker() {
	defer p.wg.Done()
	for {
		item, ok := p.jobs.get()
		if !ok {
			return
		}
		j := item.(ioJob)
		if j.write {
			err := writeAt(j.path, j.off, j.data)
			p.store.post(ioWrote{array: j.array, block: j.block, err: err})
		} else {
			data, err := readAt(j.path, j.off, j.length)
			p.store.post(ioDone{array: j.array, block: j.block, data: data, err: err})
		}
	}
}

func readAt(path string, off, length int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data := make([]byte, length)
	n, err := f.ReadAt(data, off)
	if err != nil && !(err == io.EOF && int64(n) == length) {
		return nil, fmt.Errorf("read %d bytes at %d: %w", length, off, err)
	}
	return data, nil
}

func writeAt(path string, off int64, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, off); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
