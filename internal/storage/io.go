package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// ioJob is one unit of file-system work for the asynchronous I/O filters.
type ioJob struct {
	write bool
	array string
	block int
	path  string
	off   int64
	// read: length of the block; write: payload.
	length int64
	data   []byte
}

// ioPool is the set of I/O filter goroutines attached to one storage
// filter. The paper: "Interactions with the filesystem (both read and
// write) are performed by a separate I/O filter ... There should be as many
// I/O filters as is necessary to efficiently use the parallelism contained
// in the I/O subsystem of the machine."
type ioPool struct {
	store   *Store
	workers int
	jobs    *mailbox
	wg      sync.WaitGroup
}

func newIOPool(workers int, s *Store) *ioPool {
	return &ioPool{store: s, workers: workers, jobs: newMailbox()}
}

func (p *ioPool) start() {
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
}

func (p *ioPool) stop() {
	p.jobs.close()
	p.wg.Wait()
}

// read schedules an asynchronous block read; completion posts ioDone.
func (p *ioPool) read(array string, block int, path string, off, length int64) {
	p.store.metrics.ioQueueDepth.Add(1)
	p.jobs.put(ioJob{array: array, block: block, path: path, off: off, length: length})
}

// write schedules an asynchronous block write-back; completion posts ioWrote.
func (p *ioPool) write(array string, block int, path string, off int64, data []byte) {
	p.store.metrics.ioQueueDepth.Add(1)
	p.jobs.put(ioJob{write: true, array: array, block: block, path: path, off: off, data: data})
}

func (p *ioPool) worker() {
	defer p.wg.Done()
	for {
		item, ok := p.jobs.get()
		if !ok {
			return
		}
		j := item.(ioJob)
		p.store.metrics.ioQueueDepth.Add(-1)
		start := time.Now()
		if j.write {
			err, retries := p.attempt(j)
			p.store.metrics.ioWriteSeconds.Observe(time.Since(start).Seconds())
			p.store.post(ioWrote{array: j.array, block: j.block, err: err, retries: retries})
		} else {
			var data []byte
			readJob := j
			err, retries := p.attemptRead(readJob, &data)
			p.store.metrics.ioReadSeconds.Observe(time.Since(start).Seconds())
			p.store.post(ioDone{array: j.array, block: j.block, data: data, err: err, retries: retries})
		}
	}
}

// attempt runs one write job under the retry policy.
func (p *ioPool) attempt(j ioJob) (error, int) {
	var err error
	retries := 0
	for try := 0; ; try++ {
		err = p.store.cfg.Faults.IO("write", j.path)
		if err == nil {
			err = writeAt(j.path, j.off, j.data)
		}
		if err == nil {
			return nil, retries
		}
		if try >= p.store.cfg.IORetries || !transientIOErr(err) {
			return fmt.Errorf("storage: writing %q block %d to %s at offset %d (%d attempt(s)): %w",
				j.array, j.block, j.path, j.off, try+1, err), retries
		}
		retries++
		time.Sleep(p.store.cfg.IORetryBackoff << uint(try))
	}
}

// attemptRead runs one read job under the retry policy.
func (p *ioPool) attemptRead(j ioJob, out *[]byte) (error, int) {
	var err error
	retries := 0
	for try := 0; ; try++ {
		err = p.store.cfg.Faults.IO("read", j.path)
		if err == nil {
			*out, err = readAt(j.path, j.off, j.length)
		}
		if err == nil {
			return nil, retries
		}
		if try >= p.store.cfg.IORetries || !transientIOErr(err) {
			return fmt.Errorf("storage: reading %q block %d from %s at offset %d (%d attempt(s)): %w",
				j.array, j.block, j.path, j.off, try+1, err), retries
		}
		retries++
		time.Sleep(p.store.cfg.IORetryBackoff << uint(try))
	}
}

// transientIOErr classifies an I/O failure for the retry policy. A missing
// file or a short read is a fact about the data, not a flaky device —
// retrying would only delay the inevitable. Everything else (injected
// faults, EIO-style device errors) is worth another attempt.
func transientIOErr(err error) bool {
	switch {
	case errors.Is(err, os.ErrNotExist),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF):
		return false
	}
	return true
}

func readAt(path string, off, length int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data := make([]byte, length)
	n, err := f.ReadAt(data, off)
	if err != nil && !(err == io.EOF && int64(n) == length) {
		return nil, fmt.Errorf("read %d bytes at %d: %w", length, off, err)
	}
	return data, nil
}

func writeAt(path string, off int64, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, off); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
