package storage

import "sync"

// mailbox is an unbounded MPSC queue. Stores post messages to each other
// from within their actor loops; an unbounded queue guarantees posting never
// blocks, which rules out distributed send-cycle deadlocks by construction.
// (Data-plane backpressure exists at the lease/memory-budget level instead.)
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	// items[head:] is the queue. Popping advances head instead of reslicing
	// so the backing array's full capacity is reused once drained — a
	// steady-state mailbox stops allocating entirely.
	items  []any
	head   int
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues an item. Posting to a closed mailbox is a silent no-op:
// shutdown races (e.g. a late I/O completion) are benign.
func (m *mailbox) put(item any) {
	m.mu.Lock()
	if !m.closed {
		m.items = append(m.items, item)
		m.cond.Signal()
	}
	m.mu.Unlock()
}

// get dequeues the next item, blocking while empty. ok is false once the
// mailbox is closed and drained.
func (m *mailbox) get() (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head == len(m.items) && !m.closed {
		m.cond.Wait()
	}
	if m.head == len(m.items) {
		return nil, false
	}
	item := m.items[m.head]
	m.items[m.head] = nil
	m.head++
	if m.head == len(m.items) {
		m.items = m.items[:0]
		m.head = 0
	}
	return item, true
}

// close marks the mailbox closed and wakes the consumer.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
