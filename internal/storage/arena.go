package storage

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// Arena is a size-classed, sync.Pool-backed byte-buffer pool for the block
// payloads that dominate the steady-state data path: write-lease grants,
// disk read buffers, spill frames, and wire frames. Buffers cycle between
// the store's eviction path (Put on drop) and its allocation paths (Get on
// grant/fetch), so an iterative solver's working set stops touching the
// allocator once warm.
//
// Classes are powers of two from arenaMinClass to arenaMaxClass. Get rounds
// the request up to the next class; Put files a buffer under the largest
// class that fits its capacity, so foreign buffers (grown appends, decoded
// frames) recycle too. Buffers are NOT zeroed on reuse — every consumer
// either overwrites its interval fully before publishing (the write-lease
// discipline) or adopts fully-written block images.
type Arena struct {
	classes [arenaNumClasses]sync.Pool

	gets  atomic.Int64 // buffers served from Get
	news  atomic.Int64 // Gets that had to allocate fresh
	puts  atomic.Int64 // buffers accepted back
	drops atomic.Int64 // Puts rejected (too small or oversized)
}

const (
	arenaMinShift   = 9  // 512 B
	arenaMaxShift   = 26 // 64 MiB
	arenaNumClasses = arenaMaxShift - arenaMinShift + 1
)

// ArenaStats is a snapshot of an arena's counters.
type ArenaStats struct {
	Gets, News, Puts, Drops int64
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// sharedArena is the process-wide pool every store (and the wire layer)
// draws from; a block evicted by one node recycles into any node's next
// grant, which is exactly the in-process test topology's traffic pattern.
var sharedArena = NewArena()

// SharedArena returns the process-wide buffer arena.
func SharedArena() *Arena { return sharedArena }

// getClassFor returns the smallest class index whose size is >= n, or -1
// when n exceeds the largest class.
func getClassFor(n int) int {
	if n <= 1<<arenaMinShift {
		return 0
	}
	c := 0
	for sz := 1 << arenaMinShift; sz < n; sz <<= 1 {
		c++
	}
	if c >= arenaNumClasses {
		return -1
	}
	return c
}

// putClassFor returns the largest class index whose size is <= c (the
// buffer's capacity), or -1 when the capacity is below the smallest class.
func putClassFor(c int) int {
	if c < 1<<arenaMinShift {
		return -1
	}
	cls := 0
	for sz := 1 << (arenaMinShift + 1); sz <= c && cls < arenaNumClasses-1; sz <<= 1 {
		cls++
	}
	return cls
}

// Get returns a buffer of length n. Contents are unspecified (buffers are
// recycled unzeroed). Requests above the largest class fall through to the
// allocator.
func (a *Arena) Get(n int) []byte {
	if n == 0 {
		return nil
	}
	a.gets.Add(1)
	c := getClassFor(n)
	if c < 0 {
		a.news.Add(1)
		return make([]byte, n)
	}
	size := 1 << (arenaMinShift + c)
	if p, ok := a.classes[c].Get().(unsafe.Pointer); ok {
		return unsafe.Slice((*byte)(p), size)[:n]
	}
	a.news.Add(1)
	return make([]byte, n, size)
}

// Put returns a buffer to the arena. The caller must own b exclusively: no
// live lease, view, or in-flight I/O may alias it. Undersized buffers are
// dropped (pooling them would churn the small classes with unusable
// capacities); nil is ignored.
func (a *Arena) Put(b []byte) {
	c := putClassFor(cap(b))
	if c < 0 {
		if b != nil {
			a.drops.Add(1)
		}
		return
	}
	a.puts.Add(1)
	a.classes[c].Put(unsafe.Pointer(unsafe.SliceData(b[:cap(b)])))
}

// Stats snapshots the arena's counters.
func (a *Arena) Stats() ArenaStats {
	return ArenaStats{
		Gets:  a.gets.Load(),
		News:  a.news.Load(),
		Puts:  a.puts.Load(),
		Drops: a.drops.Load(),
	}
}
