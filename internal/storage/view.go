package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Zero-copy float64 views over lease bytes.
//
// The storage layer's wire and scratch format for vector arrays is a flat
// little-endian float64 stream. On a little-endian machine a lease's bytes
// ARE the float64s — DecodeFloat64s' per-element decode loop is a pure
// allocator tax on the hot path. Float64View reinterprets the bytes in
// place via an unsafe cast, guarded by a process-wide endianness check and
// a per-call alignment check, with the decoded-copy path as the fallback on
// exotic hosts. The executors in internal/core run on views, so the
// steady-state iteration moves no vector bytes at all.
//
// Lifetime rule: a view aliases the lease's block buffer, which the store
// may recycle through the buffer arena once the lease is released. A view
// is therefore valid ONLY until the lease's Release or Abandon. Build with
// `-tags doocdebug` to turn violations into detectable poison (see
// view_debug.go).

// littleEndianCPU reports whether this machine stores multi-byte words
// little-endian — the precondition for aliasing lease bytes as []float64.
// Computed once at init.
var littleEndianCPU = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// ZeroCopyViews reports whether Float64View can alias lease bytes in place
// on this machine. False means every view is a decoded copy (the
// correctness fallback for big-endian hosts).
func ZeroCopyViews() bool { return littleEndianCPU && !viewDebugForceCopy }

// castFloat64s reinterprets b as a []float64 without copying. It fails
// (ok=false) on a big-endian host, a length that is not a multiple of 8, or
// a buffer whose base is not 8-byte aligned; callers fall back to copying.
func castFloat64s(b []byte) ([]float64, bool) {
	if !littleEndianCPU || len(b)%8 != 0 {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*float64)(p), len(b)/8), true
}

// Float64View returns lease l's bytes as a []float64, without copying when
// the machine allows it. The view is valid only until l.Release()/Abandon();
// after that the underlying buffer may be recycled and overwritten by an
// unrelated block. On hosts where the in-place cast is unsafe the view is a
// decoded copy (bit-identical values, no lifetime hazard).
func Float64View(l *Lease) []float64 {
	if l.released {
		panic(fmt.Sprintf("storage: Float64View of released %s lease on %s[%d,%d)", l.Perm, l.Array, l.Lo, l.Hi))
	}
	if v, ok := viewDebugMake(l); ok {
		return v
	}
	if v, ok := castFloat64s(l.Data); ok {
		return v
	}
	return DecodeFloat64s(l.Data)
}

// Float64WriteView returns a writable float64 view over a write lease's
// bytes, or (nil, false) when in-place aliasing is unavailable — the caller
// then computes into scratch and publishes via PutFloat64s. Values stored
// through the view are in the array's wire format directly (no encode
// step). Same lifetime rule as Float64View.
func Float64WriteView(l *Lease) ([]float64, bool) {
	if l.released {
		panic(fmt.Sprintf("storage: Float64WriteView of released %s lease on %s[%d,%d)", l.Perm, l.Array, l.Lo, l.Hi))
	}
	if l.Perm != PermWrite {
		panic(fmt.Sprintf("storage: Float64WriteView needs a write lease, got %s on %s", l.Perm, l.Array))
	}
	if viewDebugForceCopy {
		return nil, false
	}
	return castFloat64s(l.Data)
}

// EncodeFloat64s writes vals into dst in the little-endian wire format.
// len(dst) must be exactly 8*len(vals).
func EncodeFloat64s(dst []byte, vals []float64) {
	if len(dst) != 8*len(vals) {
		panic(fmt.Sprintf("storage: EncodeFloat64s: %d bytes for %d values", len(dst), len(vals)))
	}
	if v, ok := castFloat64s(dst); ok {
		copy(v, vals)
		return
	}
	for i, f := range vals {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(f))
	}
}

// DecodeFloat64sInto decodes little-endian float64s from data into dst.
// len(data) must be exactly 8*len(dst).
func DecodeFloat64sInto(dst []float64, data []byte) {
	if len(data) != 8*len(dst) {
		panic(fmt.Sprintf("storage: DecodeFloat64sInto: %d bytes for %d values", len(data), len(dst)))
	}
	if v, ok := castFloat64s(data); ok {
		copy(dst, v)
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
}

// ReadFloat64s decodes an entire float64 array into dst block by block,
// without intermediate buffers. len(dst) must be Size/8.
func (s *Store) ReadFloat64s(name string, dst []float64) error {
	info, err := s.Info(name)
	if err != nil {
		return err
	}
	if int64(8*len(dst)) != info.Size {
		return fmt.Errorf("storage: ReadFloat64s of %q: %d values for %d bytes", name, len(dst), info.Size)
	}
	for b := 0; b < info.NumBlocks(); b++ {
		bs := info.BlockSpan(b)
		lease, err := s.RequestBlock(name, b, PermRead)
		if err != nil {
			return err
		}
		DecodeFloat64sInto(dst[bs.Lo/8:bs.Hi/8], lease.Data)
		lease.Release()
	}
	return nil
}
