package storage

import (
	"strconv"
	"time"
)

// Trace lane layout within a node's pid. The engine owns tids equal to its
// worker-lane indices, so storage claims a band well above any realistic
// lane count: the actor loop (evictions) on one lane, lease grants on the
// next, and one lane per I/O worker after that.
const (
	traceTidLoop    = 90  // storage actor loop: eviction instants
	traceTidLease   = 91  // lease grants (all requester goroutines share it)
	traceTidIOBase  = 100 // I/O worker w emits on traceTidIOBase + w
	traceCatStorage = "storage"
)

// traceLanes names this store's lanes in the Chrome trace so the storage
// band is legible next to the engine's worker lanes. Called once at start.
func (s *Store) traceLanes() {
	t := s.cfg.Trace
	if !t.Enabled() {
		return
	}
	t.SetThreadName(s.cfg.NodeID, traceTidLoop, "storage")
	t.SetThreadName(s.cfg.NodeID, traceTidLease, "lease")
	for w := 0; w < s.io.workers; w++ {
		t.SetThreadName(s.cfg.NodeID, traceTidIOBase+w, "io"+strconv.Itoa(w))
	}
}

// traceIO records one completed load or spill as a span on the worker's
// lane. kind is "load" or "spill"; err colors failed attempts.
func (s *Store) traceIO(kind, array string, block, worker int, start, end time.Time, err error) {
	t := s.cfg.Trace
	if !t.Enabled() {
		return
	}
	args := map[string]any{"array": array, "block": block}
	if err != nil {
		args["error"] = err.Error()
	}
	t.Span(kind+" "+array+"#"+strconv.Itoa(block), traceCatStorage,
		s.cfg.NodeID, traceTidIOBase+worker, start, end, args)
}

// traceEvict marks one block eviction as an instant on the loop lane.
func (s *Store) traceEvict(array string, block int) {
	t := s.cfg.Trace
	if !t.Enabled() {
		return
	}
	t.Instant("evict "+array+"#"+strconv.Itoa(block), traceCatStorage,
		s.cfg.NodeID, traceTidLoop, time.Now(),
		map[string]any{"array": array, "block": block})
}

// traceGrant records the request→grant window of one lease on the shared
// lease lane (grants from concurrent requesters overlap there; the Chrome
// viewer stacks them).
func (s *Store) traceGrant(array string, start, end time.Time, err error) {
	t := s.cfg.Trace
	if !t.Enabled() {
		return
	}
	args := map[string]any{"array": array}
	if err != nil {
		args["error"] = err.Error()
	}
	t.Span("grant "+array, traceCatStorage, s.cfg.NodeID, traceTidLease, start, end, args)
}
