package storage

import (
	"errors"
	"strings"
)

// This file is the per-group resource-quota layer the job service builds on.
// A quota group is keyed by an array-name prefix (jobs tag their transient
// arrays "job<id>:", so one group per job falls out naturally) and carries
// two ceilings on this node:
//
//   - a memory budget: a soft slice of the node's cache. Allocations never
//     fail, but whenever the group's resident bytes exceed its budget the
//     group's own reclaimable blocks are evicted first, so one job cannot
//     monopolize the shared cache. Evictions are attributed to the group.
//   - a scratch budget: a hard ceiling on durable scratch bytes. A Flush
//     that would exceed it fails up front with ErrScratchQuota instead of
//     writing.
//
// A zero budget means unlimited on that axis. Quotas are per-node (like
// Flush and Evict); callers slicing a job's aggregate budget divide it
// across nodes.

// ErrScratchQuota is returned by Flush when the write would exceed the
// array's quota-group scratch ceiling.
var ErrScratchQuota = errors.New("storage: scratch quota exceeded")

// QuotaStats is a point-in-time snapshot of one quota group on one node.
type QuotaStats struct {
	Prefix        string
	MemBudget     int64
	ScratchBudget int64
	MemUsed       int64 // resident bytes of the group's arrays
	ScratchUsed   int64 // durable scratch bytes attributed to the group
	Evictions     int64 // evictions forced by this group's memory budget
}

// quotaState is the actor-owned record of one group. Only the store loop
// touches it.
type quotaState struct {
	prefix        string
	memBudget     int64
	scratchBudget int64
	scratchUsed   int64
	evictions     int64
}

type cmdSetQuota struct {
	prefix       string
	mem, scratch int64
	ack          chan struct{}
}

type cmdClearQuota struct {
	prefix string
	ack    chan struct{}
}

type quotaResult struct {
	qs QuotaStats
	ok bool
}

type cmdQuotaStats struct {
	prefix string
	reply  chan quotaResult
}

// SetQuota installs or updates the quota group for arrays whose names start
// with prefix. Existing matching arrays join the group immediately and the
// memory budget is enforced at once. Zero budgets mean unlimited.
func (s *Store) SetQuota(prefix string, memBudget, scratchBudget int64) {
	ack := make(chan struct{}, 1)
	s.post(cmdSetQuota{prefix: prefix, mem: memBudget, scratch: scratchBudget, ack: ack})
	<-ack
}

// ClearQuota removes the quota group. Its arrays fall back to the next
// longest matching prefix, or to no quota.
func (s *Store) ClearQuota(prefix string) {
	ack := make(chan struct{}, 1)
	s.post(cmdClearQuota{prefix: prefix, ack: ack})
	<-ack
}

// Quota returns the group's snapshot, and whether the group exists.
func (s *Store) Quota(prefix string) (QuotaStats, bool) {
	reply := make(chan quotaResult, 1)
	s.post(cmdQuotaStats{prefix: prefix, reply: reply})
	r := <-reply
	return r.qs, r.ok
}

// quotaFor resolves the group an array name belongs to: the longest
// matching prefix wins, so "job3:" beats "job" for "job3:x_0_0".
func quotaFor(st *loopState, name string) *quotaState {
	var best *quotaState
	for p, q := range st.quotas {
		if strings.HasPrefix(name, p) && (best == nil || len(p) > len(best.prefix)) {
			best = q
		}
	}
	return best
}

func (s *Store) handleSetQuota(st *loopState, m cmdSetQuota) {
	q, ok := st.quotas[m.prefix]
	if !ok {
		q = &quotaState{prefix: m.prefix}
		st.quotas[m.prefix] = q
	}
	q.memBudget = m.mem
	q.scratchBudget = m.scratch
	// (Re)attach arrays: an existing array joins this group if the new
	// prefix is now its longest match. Scratch bytes follow the array.
	for name, ast := range st.arrays {
		if nq := quotaFor(st, name); nq != ast.quota {
			s.moveArrayQuota(ast, nq)
		}
	}
	s.reclaimQuota(st, q, "", -1)
	m.ack <- struct{}{}
}

func (s *Store) handleClearQuota(st *loopState, m cmdClearQuota) {
	if _, ok := st.quotas[m.prefix]; ok {
		delete(st.quotas, m.prefix)
		for name, ast := range st.arrays {
			if nq := quotaFor(st, name); nq != ast.quota {
				s.moveArrayQuota(ast, nq)
			}
		}
	}
	m.ack <- struct{}{}
}

// moveArrayQuota reassigns an array's group, carrying its scratch
// attribution along.
func (s *Store) moveArrayQuota(ast *arrayState, to *quotaState) {
	if ast.quota != nil {
		ast.quota.scratchUsed -= ast.scratchBytes
	}
	ast.quota = to
	if to != nil {
		to.scratchUsed += ast.scratchBytes
	}
}

func (s *Store) handleQuotaStats(st *loopState, m cmdQuotaStats) {
	q, ok := st.quotas[m.prefix]
	if !ok {
		m.reply <- quotaResult{}
		return
	}
	m.reply <- quotaResult{ok: true, qs: QuotaStats{
		Prefix:        q.prefix,
		MemBudget:     q.memBudget,
		ScratchBudget: q.scratchBudget,
		MemUsed:       groupMemUsed(st, q),
		ScratchUsed:   q.scratchUsed,
		Evictions:     q.evictions,
	}}
}

func groupMemUsed(st *loopState, q *quotaState) int64 {
	var n int64
	for _, ast := range st.arrays {
		if ast.quota != q {
			continue
		}
		for _, b := range ast.blocks {
			n += int64(len(b.buf))
		}
	}
	return n
}

// reclaimQuota enforces one group's memory budget by evicting the group's
// own reclaimable blocks (same safety rules as the global reclaim: unpinned
// and durable or remote-backed somewhere). Quota evictions count in the
// node totals (Evictions) and are additionally attributed to the group.
func (s *Store) reclaimQuota(st *loopState, q *quotaState, protectArray string, protectBlock int) {
	if q == nil || q.memBudget <= 0 {
		return
	}
	used := groupMemUsed(st, q)
	if used <= q.memBudget {
		return
	}
	victims := s.collectVictims(st, protectArray, protectBlock, q)
	for _, v := range victims {
		if used <= q.memBudget {
			return
		}
		used -= int64(len(v.b.buf))
		s.dropBlock(st, v.name, v.idx, v.b)
		st.stats.Evictions++
		s.metrics.evictions.Inc()
		s.traceEvict(v.name, v.idx)
		st.stats.QuotaEvictions++
		q.evictions++
		s.metrics.quotaEvictions(q.prefix).Inc()
	}
}
