package storage

import (
	"strconv"

	"dooc/internal/compress"
	"dooc/internal/obs"
)

// storeMetrics are one node's storage series in the shared obs registry,
// resolved once at construction so the hot paths touch only atomics. With a
// nil registry every field is nil and every operation a no-op.
type storeMetrics struct {
	readReqs        *obs.Counter
	writeReqs       *obs.Counter
	hits            *obs.Counter
	misses          *obs.Counter
	evictions       *obs.Counter
	blockLoads      *obs.Counter
	prefetchIssued  *obs.Counter
	prefetchLoads   *obs.Counter
	prefetchHits    *obs.Counter
	peerProbes      *obs.Counter
	peerProbeMisses *obs.Counter
	diskReadBytes   *obs.Counter
	diskWriteBytes  *obs.Counter
	peerBytes       *obs.Counter
	ioRetries       *obs.Counter

	compressBailouts *obs.Counter

	shardPushes     *obs.Counter
	shardDurable    *obs.Counter
	shardFetches    *obs.Counter
	shardFallbacks  *obs.Counter
	shardPushBytes  *obs.Counter
	shardFetchBytes *obs.Counter

	memUsed              *obs.Gauge
	ioQueueDepth         *obs.Gauge
	compressRatioPercent *obs.Gauge

	leaseWait      *obs.Histogram
	ioReadSeconds  *obs.Histogram
	ioWriteSeconds *obs.Histogram
	encodeSeconds  *obs.Histogram
	decodeSeconds  *obs.Histogram

	// Per-codec byte counters are resolved lazily — which codecs appear
	// depends on the adaptive bail-out at runtime. Only the actor loop
	// touches the map; the counters themselves are atomics.
	reg      *obs.Registry
	node     obs.Label
	perCodec map[uint8]*codecCounters

	// Per-quota-group eviction counters, resolved lazily: groups come and
	// go with jobs. Only the actor loop touches the map.
	perGroup map[string]*obs.Counter
}

// codecCounters are one codec's byte series on one node.
type codecCounters struct {
	encRawBytes    *obs.Counter
	encStoredBytes *obs.Counter
	decStoredBytes *obs.Counter
	decRawBytes    *obs.Counter
}

// codec returns the byte counters for a codec ID, registering them on
// first use with node and codec labels.
func (m *storeMetrics) codec(id uint8) *codecCounters {
	if cc, ok := m.perCodec[id]; ok {
		return cc
	}
	name := "unknown"
	if c, ok := compress.ByID(id); ok {
		name = c.Name()
	}
	l := obs.L("codec", name)
	cc := &codecCounters{
		encRawBytes:    m.reg.Counter("dooc_storage_compress_raw_bytes_total", "logical block bytes fed to the encoder on spill", m.node, l),
		encStoredBytes: m.reg.Counter("dooc_storage_compress_stored_bytes_total", "frame bytes written to scratch", m.node, l),
		decStoredBytes: m.reg.Counter("dooc_storage_decompress_stored_bytes_total", "frame bytes read from scratch", m.node, l),
		decRawBytes:    m.reg.Counter("dooc_storage_decompress_raw_bytes_total", "logical block bytes produced by the decoder", m.node, l),
	}
	m.perCodec[id] = cc
	return cc
}

// quotaEvictions returns the group's eviction counter, registering it on
// first use with node and group labels.
func (m *storeMetrics) quotaEvictions(group string) *obs.Counter {
	if c, ok := m.perGroup[group]; ok {
		return c
	}
	c := m.reg.Counter("dooc_storage_quota_evictions_total", "blocks evicted by per-group quota enforcement", m.node, obs.L("group", group))
	m.perGroup[group] = c
	return c
}

func newStoreMetrics(reg *obs.Registry, node int) storeMetrics {
	l := obs.L("node", strconv.Itoa(node))
	return storeMetrics{
		reg:      reg,
		node:     l,
		perCodec: make(map[uint8]*codecCounters),
		perGroup: make(map[string]*obs.Counter),

		readReqs:         reg.Counter("dooc_storage_read_requests_total", "read lease requests received", l),
		writeReqs:        reg.Counter("dooc_storage_write_requests_total", "write lease requests received", l),
		hits:             reg.Counter("dooc_storage_cache_hits_total", "read requests served from resident memory", l),
		misses:           reg.Counter("dooc_storage_cache_misses_total", "read requests that had to fetch", l),
		evictions:        reg.Counter("dooc_storage_evictions_total", "blocks reclaimed from memory", l),
		blockLoads:       reg.Counter("dooc_storage_block_loads_total", "complete blocks installed from disk or a peer", l),
		prefetchIssued:   reg.Counter("dooc_storage_prefetch_issued_total", "prefetch requests received", l),
		prefetchLoads:    reg.Counter("dooc_storage_prefetch_loads_total", "block fetches initiated by prefetch", l),
		prefetchHits:     reg.Counter("dooc_storage_prefetch_hits_total", "cache hits on prefetched blocks", l),
		peerProbes:       reg.Counter("dooc_storage_peer_probes_total", "random-peer probe messages sent", l),
		peerProbeMisses:  reg.Counter("dooc_storage_peer_probe_misses_total", "probes answered \"not here\"", l),
		diskReadBytes:    reg.Counter("dooc_storage_disk_read_bytes_total", "scratch-dir bytes read", l),
		diskWriteBytes:   reg.Counter("dooc_storage_disk_write_bytes_total", "scratch-dir bytes written", l),
		peerBytes:        reg.Counter("dooc_storage_peer_fetch_bytes_total", "bytes fetched from peer stores", l),
		ioRetries:        reg.Counter("dooc_storage_io_retries_total", "transient disk errors survived by the retry policy", l),
		compressBailouts: reg.Counter("dooc_storage_compress_bailouts_total", "blocks stored raw by the adaptive bail-out", l),

		shardPushes:     reg.Counter("dooc_storage_shard_pushes_total", "blocks pushed toward their cluster ring owners", l),
		shardDurable:    reg.Counter("dooc_storage_shard_durable_total", "pushes acked by enough remote peers to be durable", l),
		shardFetches:    reg.Counter("dooc_storage_shard_fetches_total", "blocks installed from the cluster shard tier", l),
		shardFallbacks:  reg.Counter("dooc_storage_shard_fallbacks_total", "shard fetches that missed and fell back to the normal path", l),
		shardPushBytes:  reg.Counter("dooc_storage_shard_push_bytes_total", "block bytes pushed to the shard tier", l),
		shardFetchBytes: reg.Counter("dooc_storage_shard_fetch_bytes_total", "block bytes fetched from the shard tier", l),

		memUsed:              reg.Gauge("dooc_storage_mem_used_bytes", "resident block bytes", l),
		ioQueueDepth:         reg.Gauge("dooc_storage_io_queue_depth", "jobs queued for the asynchronous I/O filters", l),
		compressRatioPercent: reg.Gauge("dooc_storage_compress_ratio_percent", "cumulative spill ratio, 100*raw/stored", l),

		leaseWait:      reg.Histogram("dooc_storage_lease_wait_seconds", "time from lease request to grant", nil, l),
		ioReadSeconds:  reg.Histogram("dooc_storage_io_read_seconds", "block read latency incl. retries", nil, l),
		ioWriteSeconds: reg.Histogram("dooc_storage_io_write_seconds", "block write latency incl. retries", nil, l),
		encodeSeconds:  reg.Histogram("dooc_storage_compress_encode_seconds", "block encode latency on spill", nil, l),
		decodeSeconds:  reg.Histogram("dooc_storage_compress_decode_seconds", "frame decode latency on load", nil, l),
	}
}
