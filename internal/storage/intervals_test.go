package storage

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalAddAndCovers(t *testing.T) {
	var is intervalSet
	if err := is.add(span{10, 20}); err != nil {
		t.Fatal(err)
	}
	if err := is.add(span{30, 40}); err != nil {
		t.Fatal(err)
	}
	if !is.covers(span{10, 20}) || !is.covers(span{12, 18}) {
		t.Error("covers failed on contained span")
	}
	if is.covers(span{10, 25}) || is.covers(span{25, 30}) || is.covers(span{5, 15}) {
		t.Error("covers succeeded on uncovered span")
	}
	if is.coveredBytes() != 20 {
		t.Errorf("coveredBytes = %d, want 20", is.coveredBytes())
	}
}

func TestIntervalOverlapRejected(t *testing.T) {
	var is intervalSet
	if err := is.add(span{10, 20}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []span{{10, 20}, {5, 11}, {19, 25}, {12, 15}, {0, 100}} {
		if err := is.add(bad); err == nil {
			t.Errorf("add(%v) succeeded, want overlap error", bad)
		}
	}
	if err := is.add(span{5, 5}); err == nil {
		t.Error("empty span accepted")
	}
}

func TestIntervalMerging(t *testing.T) {
	var is intervalSet
	for _, s := range []span{{0, 10}, {20, 30}, {10, 20}} {
		if err := is.add(s); err != nil {
			t.Fatal(err)
		}
	}
	if len(is.spans) != 1 {
		t.Fatalf("spans = %v, want single merged span", is.spans)
	}
	if !is.full(30) {
		t.Error("full(30) = false after covering [0,30)")
	}
	if is.full(31) {
		t.Error("full(31) = true")
	}
}

// TestIntervalSetProperty: adding a random permutation of disjoint tiles
// always succeeds, covers each tile, and merges adjacent tiles.
func TestIntervalSetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		// Build disjoint tiles with random gaps.
		type tile struct{ s span }
		var tiles []tile
		pos := int64(0)
		for i := 0; i < n; i++ {
			pos += int64(rng.Intn(3)) // gap 0..2
			l := int64(1 + rng.Intn(10))
			tiles = append(tiles, tile{span{pos, pos + l}})
			pos += l
		}
		perm := rng.Perm(n)
		var is intervalSet
		for _, i := range perm {
			if err := is.add(tiles[i].s); err != nil {
				return false
			}
		}
		var want int64
		for _, tl := range tiles {
			if !is.covers(tl.s) {
				return false
			}
			want += tl.s.Hi - tl.s.Lo
		}
		if is.coveredBytes() != want {
			return false
		}
		// Spans are sorted, disjoint, and non-touching (fully merged).
		for i := 1; i < len(is.spans); i++ {
			if is.spans[i-1].Hi >= is.spans[i].Lo {
				return false
			}
		}
		// Re-adding any tile must fail.
		for _, tl := range tiles {
			if err := is.add(tl.s); err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
