package storage

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"dooc/internal/compress"
	"dooc/internal/faults"
	"dooc/internal/obs"
)

// Perm is the access permission of a lease.
type Perm int

const (
	// PermRead grants read access; the data is guaranteed resident until the
	// lease is released.
	PermRead Perm = iota + 1
	// PermWrite grants write access to a not-yet-written interval; the data
	// becomes readable by others only after the lease is released.
	PermWrite
)

func (p Perm) String() string {
	switch p {
	case PermRead:
		return "read"
	case PermWrite:
		return "write"
	default:
		return fmt.Sprintf("Perm(%d)", int(p))
	}
}

// EvictionPolicy selects the reclamation victim order.
type EvictionPolicy int

const (
	// EvictLRU drops the least recently used safe block (the paper's
	// policy, and the default).
	EvictLRU EvictionPolicy = iota
	// EvictFIFO drops the earliest-loaded safe block.
	EvictFIFO
	// EvictMRU drops the most recently used safe block — the theoretical
	// optimum for cyclic scans larger than memory, used by the eviction
	// ablation to quantify how far back-and-forth reordering closes the
	// gap for plain LRU.
	EvictMRU
)

func (p EvictionPolicy) String() string {
	switch p {
	case EvictLRU:
		return "lru"
	case EvictFIFO:
		return "fifo"
	case EvictMRU:
		return "mru"
	default:
		return fmt.Sprintf("EvictionPolicy(%d)", int(p))
	}
}

// Config configures one node's local storage filter.
type Config struct {
	// NodeID is this store's index within its network.
	NodeID int
	// MemoryBudget is the soft cap on resident block bytes. Exceeding it
	// triggers reclamation of unpinned, disk- or remote-backed blocks.
	MemoryBudget int64
	// Eviction selects the reclamation victim order (default EvictLRU).
	Eviction EvictionPolicy
	// ScratchDir enables out-of-core operation: existing files are scanned
	// as arrays at startup and explicit flushes write arrays back.
	// Empty disables the out-of-core mode.
	ScratchDir string
	// IOWorkers is the number of asynchronous I/O filters (default 2;
	// the paper sizes this to the machine's I/O parallelism).
	IOWorkers int
	// Seed drives random peer probing deterministically in tests.
	Seed int64
	// Ledger, when non-nil, is invoked for every cross-node data transfer
	// (typically (*simnet.Cluster).Transfer).
	Ledger func(from, to int, bytes int64)
	// IORetries is how many times a transient disk read/write failure is
	// retried before the error becomes terminal (default 2, so 3 attempts).
	IORetries int
	// IORetryBackoff is the first retry's delay; it doubles per attempt
	// (default 1ms).
	IORetryBackoff time.Duration
	// Faults, when non-nil, injects disk errors and stalls into the I/O
	// filters for recovery testing.
	Faults *faults.Injector
	// Codec, when non-nil, compresses blocks on scratch spill: flushed
	// arrays are written as per-block self-describing frames (with an
	// adaptive raw bail-out for incompressible blocks) and decompressed on
	// load. Reading a compressed scratch directory does not require Codec —
	// frames carry their own codec ID — so a store restarted without one
	// still recovers compressed arrays.
	Codec compress.Codec
	// Obs, when non-nil, receives this store's metric series (cache
	// hits/misses, eviction and load counters, lease-wait and I/O latency
	// histograms) under dooc_storage_* names with a node label.
	Obs *obs.Registry
	// Trace, when non-nil, records storage events into the shared Chrome
	// trace: load/spill spans on per-worker I/O lanes, lease-grant spans,
	// and eviction instants. Plain (non-causal) events on the node's pid.
	Trace *obs.Tracer
	// Shard, when non-nil, connects this store to the cross-process
	// cluster tier: fully written blocks are pushed toward their
	// consistent-hash owners in the background, durably pushed blocks
	// become evictable without a local disk spill, and a miss on a
	// shard-backed block is refetched over the ring before falling back
	// to the normal load path.
	Shard ShardBackend
}

// ArrayInfo describes an array known to the storage layer.
type ArrayInfo struct {
	Name      string
	Size      int64
	BlockSize int64
}

// NumBlocks returns the number of blocks in the array.
func (a ArrayInfo) NumBlocks() int {
	if a.Size == 0 {
		return 0
	}
	return int((a.Size + a.BlockSize - 1) / a.BlockSize)
}

// BlockSpan returns the global byte range of block idx.
func (a ArrayInfo) BlockSpan(idx int) span {
	lo := int64(idx) * a.BlockSize
	hi := lo + a.BlockSize
	if hi > a.Size {
		hi = a.Size
	}
	return span{lo, hi}
}

// BlockOf returns the block index containing global offset off.
func (a ArrayInfo) BlockOf(off int64) int { return int(off / a.BlockSize) }

// Lease is a granted interval access. Release it exactly once. The Data
// slice aliases the block buffer and must not be used after release.
type Lease struct {
	store *Store
	Array string
	Perm  Perm
	// Lo and Hi are the global byte offsets of the interval.
	Lo, Hi int64
	// Data is the interval's bytes: len(Data) == Hi-Lo.
	Data []byte

	block    int
	released bool
}

// Release returns the lease to the store. For write leases this publishes
// the interval: it becomes readable by other filters. Releasing twice
// panics, as it would corrupt reference counts.
func (l *Lease) Release() {
	if l.released {
		panic(fmt.Sprintf("storage: double release of %s lease on %s[%d,%d)", l.Perm, l.Array, l.Lo, l.Hi))
	}
	l.released = true
	invalidateViews(l)
	c := relPool.Get().(*cmdRelease)
	c.lease = l
	l.store.post(c)
}

// Abandon returns the lease without publishing. For a write lease the
// interval stays unwritten and may be leased again — the recovery path for
// an executor that failed mid-write, since publishing a half-filled buffer
// would poison every downstream reader. For a read lease Abandon equals
// Release. Abandoning an already-released lease is a no-op, so cleanup code
// can abandon unconditionally.
func (l *Lease) Abandon() {
	if l.released {
		return
	}
	l.released = true
	invalidateViews(l)
	c := relPool.Get().(*cmdRelease)
	c.lease, c.abandon = l, true
	l.store.post(c)
}

// Released reports whether the lease has been released or abandoned.
func (l *Lease) Released() bool { return l.released }

// Stats are cumulative counters for one store.
type Stats struct {
	MemUsed           int64
	ReadRequests      int64 // read lease requests received
	WriteRequests     int64 // write lease requests received
	Hits              int64 // read requests served from resident memory
	Misses            int64 // read requests that had to fetch
	Evictions         int64
	QuotaEvictions    int64 // subset of Evictions forced by per-group quotas
	BlockLoads        int64 // complete blocks installed from disk or a peer
	BytesReadDisk     int64
	BytesWrittenDisk  int64
	BytesFetchedPeer  int64
	PeerProbes        int64 // random-peer probe messages sent
	PeerProbeMisses   int64 // probes answered "not here"
	OverBudgetAllocs  int64 // allocations granted above the memory budget
	PrefetchIssued    int64
	PrefetchLoads     int64 // block fetches initiated by prefetch
	PrefetchHits      int64 // cache hits on blocks a prefetch brought in
	ImplicitDiskReads int64
	IORetries         int64 // transient disk errors survived by the retry policy

	// Cluster shard-tier accounting (zero without Config.Shard).
	ShardPushes        int64 // blocks pushed toward their ring owners
	ShardDurablePushes int64 // pushes acked by enough remote peers to be durable
	ShardFetches       int64 // blocks installed from the shard tier
	ShardFallbacks     int64 // shard fetches that missed and fell back
	BytesPushedShard   int64
	BytesFetchedShard  int64

	// Compression accounting. BytesWrittenDisk/BytesReadDisk count physical
	// scratch traffic, so with a codec they shrink; the pairs below relate
	// physical frames to the logical block bytes they carry.
	CompressRawBytes      int64 // logical bytes fed to the encoder on spill
	CompressStoredBytes   int64 // frame bytes written to scratch
	CompressBailouts      int64 // blocks stored raw by the adaptive bail-out
	DecompressStoredBytes int64 // frame bytes read from scratch
	DecompressRawBytes    int64 // logical bytes produced by the decoder
}

// ResidencyMap reports which blocks of which arrays are resident in memory,
// the paper's "map of which part of the arrays are currently available".
type ResidencyMap struct {
	// Blocks maps array name to the sorted indices of fully readable
	// resident blocks.
	Blocks map[string][]int
	// MemUsed is the resident byte total.
	MemUsed int64
	// Budget echoes the configured memory budget.
	Budget int64
	// backing is the shared index storage the Blocks values alias, kept so
	// RecycleMap can return the whole snapshot for reuse.
	backing []int
}

// RecycleMap returns a snapshot obtained from Map for reuse. Callers that
// poll Map on every scheduling decision should recycle; after the call the
// snapshot (including its Blocks map) must not be used again.
func (s *Store) RecycleMap(rm ResidencyMap) {
	if rm.Blocks == nil {
		return
	}
	clear(rm.Blocks)
	rm.MemUsed, rm.Budget = 0, 0
	rm.backing = rm.backing[:0]
	rmPool.Put(&rm)
}

var rmPool sync.Pool

// Resident reports whether the map shows array's block idx resident.
func (m ResidencyMap) Resident(array string, idx int) bool {
	for _, b := range m.Blocks[array] {
		if b == idx {
			return true
		}
	}
	return false
}

// Store is one node's storage filter: an actor goroutine owning all local
// state, a pool of asynchronous I/O filter goroutines, and links to peers.
type Store struct {
	cfg     Config
	inbox   *mailbox
	io      *ioPool
	rng     *rand.Rand
	metrics storeMetrics

	peers []*Store // includes self at cfg.NodeID

	// Freelists owned by the loop goroutine (never touched elsewhere).
	// Unlike sync.Pool these survive GC, which matters because an iterative
	// solver cycles array generations at a steady rate: the structs retired
	// by iteration t are exactly what iteration t+1 needs.
	astFree   []*arrayState
	blockFree []*blockState
	dirFree   []*dirEntry
	victimBuf []victim

	done chan struct{}
}

// metaFileSuffix marks sidecar files describing flushed arrays.
const metaFileSuffix = ".meta"

// arrayFileSuffix is the on-disk extension of array payload files.
const arrayFileSuffix = ".arr"

// blockDirSuffix is the on-disk extension of compressed array directories:
// frames are variable length, so a compressed array is a directory of
// per-block frame files instead of a single fixed-offset file.
const blockDirSuffix = ".blk"

// sidecar is the JSON sidecar describing a flushed array's block structure.
// A non-empty Codec marks the compressed per-block layout; the value
// records the codec the flush was configured with (individual frames are
// self-describing and may differ via the adaptive bail-out).
type sidecar struct {
	Size      int64  `json:"size"`
	BlockSize int64  `json:"block_size"`
	Codec     string `json:"codec,omitempty"`
}

// NewNetwork creates n interconnected stores. The configure callback can
// customize each node's Config (its NodeID field is pre-set).
func NewNetwork(n int, configure func(node int, cfg *Config)) ([]*Store, error) {
	if n <= 0 {
		return nil, fmt.Errorf("storage: need at least one store, got %d", n)
	}
	stores := make([]*Store, n)
	for i := range stores {
		cfg := Config{NodeID: i, MemoryBudget: 1 << 30, IOWorkers: 2, Seed: int64(i + 1)}
		if configure != nil {
			configure(i, &cfg)
		}
		cfg.NodeID = i
		s, err := newStore(cfg)
		if err != nil {
			for j := 0; j < i; j++ {
				stores[j].Close()
			}
			return nil, err
		}
		stores[i] = s
	}
	for _, s := range stores {
		s.peers = stores
	}
	for _, s := range stores {
		s.start()
	}
	// Announce scanned on-disk arrays across the network so any node can
	// resolve them (the paper's startup scan records names and sizes).
	for _, s := range stores {
		s.announceScanned()
	}
	return stores, nil
}

// NewLocal creates a single-node store (the common library entry point).
func NewLocal(cfg Config) (*Store, error) {
	cfg.NodeID = 0
	s, err := newStore(cfg)
	if err != nil {
		return nil, err
	}
	s.peers = []*Store{s}
	s.start()
	s.announceScanned()
	return s, nil
}

func newStore(cfg Config) (*Store, error) {
	if cfg.MemoryBudget <= 0 {
		return nil, fmt.Errorf("storage: memory budget must be positive, got %d", cfg.MemoryBudget)
	}
	if cfg.IOWorkers <= 0 {
		cfg.IOWorkers = 2
	}
	if cfg.IORetries < 0 {
		cfg.IORetries = 0
	} else if cfg.IORetries == 0 {
		cfg.IORetries = 2
	}
	if cfg.IORetryBackoff <= 0 {
		cfg.IORetryBackoff = time.Millisecond
	}
	if cfg.ScratchDir != "" {
		if err := os.MkdirAll(cfg.ScratchDir, 0o755); err != nil {
			return nil, fmt.Errorf("storage: scratch dir: %w", err)
		}
	}
	s := &Store{
		cfg:     cfg,
		inbox:   newMailbox(),
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		metrics: newStoreMetrics(cfg.Obs, cfg.NodeID),
		done:    make(chan struct{}),
	}
	s.io = newIOPool(cfg.IOWorkers, s)
	return s, nil
}

// start launches the actor loop and I/O workers.
func (s *Store) start() {
	s.traceLanes()
	s.io.start()
	go s.loop()
}

// NodeID returns the store's node index.
func (s *Store) NodeID() int { return s.cfg.NodeID }

// scannedArray is one startup-scan discovery: the array shape plus whether
// its local layout is the compressed per-block directory.
type scannedArray struct {
	info       ArrayInfo
	compressed bool
}

// scanScratch enumerates pre-existing arrays in the scratch directory:
// plain `.arr` payload files, and `.blk` directories of compressed block
// frames (which require a sidecar, since the array shape cannot be
// recovered from variable-length frames).
func (s *Store) scanScratch() ([]scannedArray, error) {
	if s.cfg.ScratchDir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(s.cfg.ScratchDir)
	if err != nil {
		return nil, err
	}
	var found []scannedArray
	for _, e := range entries {
		if e.IsDir() {
			if !strings.HasSuffix(e.Name(), blockDirSuffix) {
				continue
			}
			name := strings.TrimSuffix(e.Name(), blockDirSuffix)
			sc, ok := s.readSidecar(name)
			if !ok || sc.Codec == "" {
				continue
			}
			found = append(found, scannedArray{
				info:       ArrayInfo{Name: name, Size: sc.Size, BlockSize: sc.BlockSize},
				compressed: true,
			})
			continue
		}
		if !strings.HasSuffix(e.Name(), arrayFileSuffix) {
			continue
		}
		name := strings.TrimSuffix(e.Name(), arrayFileSuffix)
		fi, err := e.Info()
		if err != nil {
			return nil, err
		}
		info := ArrayInfo{Name: name, Size: fi.Size(), BlockSize: fi.Size()}
		if info.Size == 0 {
			continue
		}
		// A sidecar refines the block structure.
		if sc, ok := s.readSidecar(name); ok {
			info.Size = sc.Size
			info.BlockSize = sc.BlockSize
		}
		found = append(found, scannedArray{info: info})
	}
	return found, nil
}

// readSidecar loads an array's sidecar if present and plausible.
func (s *Store) readSidecar(name string) (sidecar, bool) {
	raw, err := os.ReadFile(filepath.Join(s.cfg.ScratchDir, name+metaFileSuffix))
	if err != nil {
		return sidecar{}, false
	}
	var sc sidecar
	if err := json.Unmarshal(raw, &sc); err != nil || sc.Size <= 0 || sc.BlockSize <= 0 {
		return sidecar{}, false
	}
	return sc, true
}

// announceScanned registers this node's on-disk arrays with every store.
func (s *Store) announceScanned() {
	scanned, err := s.scanScratch()
	if err != nil {
		// Scan failures surface on first access attempt; the scratch dir was
		// already validated at construction.
		return
	}
	for _, sa := range scanned {
		for _, p := range s.peers {
			p.post(msgAnnounce{info: sa.info, diskNode: s.cfg.NodeID, compressed: sa.compressed})
		}
	}
}

// arrayPath returns the payload file path for an array on this node.
func (s *Store) arrayPath(name string) string {
	return filepath.Join(s.cfg.ScratchDir, name+arrayFileSuffix)
}

// blockDir returns the directory holding an array's compressed block
// frames on this node.
func (s *Store) blockDir(name string) string {
	return filepath.Join(s.cfg.ScratchDir, name+blockDirSuffix)
}

// blockPath returns the frame file for one compressed block.
func (s *Store) blockPath(name string, idx int) string {
	return filepath.Join(s.blockDir(name), fmt.Sprintf("%06d", idx))
}

// homeOf returns the node owning the directory entry for (array, block):
// the partitioned global map of the paper. The hash is FNV-1a over
// "<array>/<block>", computed inline — this runs for every lease request
// and directory update, where hash.Hash's allocation is measurable.
func (s *Store) homeOf(array string, block int) int {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(array); i++ {
		h = (h ^ uint32(array[i])) * prime32
	}
	h = (h ^ uint32('/')) * prime32
	var digits [20]byte
	ds := strconv.AppendInt(digits[:0], int64(block), 10)
	for _, c := range ds {
		h = (h ^ uint32(c)) * prime32
	}
	return int(h % uint32(len(s.peers)))
}

// post enqueues a message for the actor loop.
func (s *Store) post(m any) { s.inbox.put(m) }

// ledger records a cross-node transfer if configured.
func (s *Store) ledger(from, to int, bytes int64) {
	if s.cfg.Ledger != nil && from != to {
		s.cfg.Ledger(from, to, bytes)
	}
}
