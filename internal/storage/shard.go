package storage

// ShardBackend connects a store to a cross-process storage tier — in
// practice internal/cluster.Node, the consistent-hash ring over real
// doocserve peers. The interface lives here so storage does not import
// the cluster package.
//
// The tier behaves as remote memory with explicit durability: a fully
// written block is pushed toward its ring owners in the background, and
// only when the push reports durable (enough distinct remote peers hold
// the bytes to survive any single peer death) does the block become
// evictable without a local disk spill. A miss on fetch is a clean
// fallback — the store clears its shard marking and resumes the normal
// disk/peer load path.
//
// All methods must be safe for concurrent use; the store calls them from
// short-lived goroutines, never from its actor loop.
type ShardBackend interface {
	// FetchBlock resolves a block over the tier. ok=false means no live
	// peer holds it. The returned slice is shared and must be treated as
	// immutable; the store copies it into its own buffer.
	FetchBlock(array string, block int) (data []byte, ok bool)
	// PushBlock places a written block on the tier. The return value
	// reports durability; the backend must not retain data after
	// returning.
	PushBlock(array string, block int, data []byte) (durable bool)
	// InvalidateArray drops the array from the tier everywhere (the
	// array was deleted).
	InvalidateArray(array string)
}

// shardDone delivers an asynchronous shard-tier fetch to the actor loop.
// data (on ok) is an arena buffer owned by the message.
type shardDone struct {
	array string
	block int
	data  []byte
	ok    bool
}

// shardPushed delivers a background push's durability verdict.
type shardPushed struct {
	array   string
	block   int
	durable bool
}

// shardFetch runs off-loop: resolve the block over the tier and post the
// result. The backend's slice is copied into an arena buffer because the
// backend (replica cache, block table) retains and may replace its own.
func (s *Store) shardFetch(array string, block int) {
	data, ok := s.cfg.Shard.FetchBlock(array, block)
	if !ok {
		s.post(shardDone{array: array, block: block})
		return
	}
	buf := sharedArena.Get(len(data))
	copy(buf, data)
	s.post(shardDone{array: array, block: block, data: buf, ok: true})
}

// handleShardDone installs a shard-tier fetch, or falls back to the
// normal load path on a miss.
func (s *Store) handleShardDone(st *loopState, m shardDone) {
	ast, ok := st.arrays[m.array]
	if !ok {
		sharedArena.Put(m.data)
		return
	}
	b := s.getBlock(ast, m.block)
	b.fetching = false
	if m.ok {
		st.stats.ShardFetches++
		st.stats.BytesFetchedShard += int64(len(m.data))
		s.metrics.shardFetches.Inc()
		s.metrics.shardFetchBytes.Add(int64(len(m.data)))
		s.installBlock(st, ast, m.block, b, m.data, false, false)
		return
	}
	// The tier no longer holds the block (owner died, or the copy was
	// shed). Clear the shard marking — the durability it promised is gone
	// — and resume the normal path for the blocked waiters.
	st.stats.ShardFallbacks++
	s.metrics.shardFallbacks.Inc()
	b.shardBacked = false
	b.shardDurable = false
	if len(b.waiters) > 0 {
		s.ensureBlockData(st, ast, m.block, b)
	}
}

// maybeShardPush starts a background push of a fully written block toward
// its ring owners. Runs on the actor loop right after write publication.
func (s *Store) maybeShardPush(st *loopState, ast *arrayState, bi int, b *blockState) {
	if s.cfg.Shard == nil || b.shardPushing {
		return
	}
	bs := ast.info.BlockSpan(bi)
	if b.buf == nil || !b.resident.full(bs.Hi-bs.Lo) {
		return
	}
	b.shardPushing = true
	st.stats.ShardPushes++
	st.stats.BytesPushedShard += int64(len(b.buf))
	s.metrics.shardPushes.Inc()
	s.metrics.shardPushBytes.Add(int64(len(b.buf)))
	data := sharedArena.Get(len(b.buf))
	copy(data, b.buf)
	name := ast.info.Name
	go func() {
		durable := s.cfg.Shard.PushBlock(name, bi, data)
		sharedArena.Put(data)
		s.post(shardPushed{array: name, block: bi, durable: durable})
	}()
}

// handleShardPushed records a push's durability verdict. A durable block
// gains the spill-free eviction right; reclamation is retried since the
// block may be exactly what an over-budget store was waiting to shed.
func (s *Store) handleShardPushed(st *loopState, m shardPushed) {
	ast, ok := st.arrays[m.array]
	if !ok {
		return // array deleted while the push was in flight
	}
	b, ok := ast.blocks[m.block]
	if !ok {
		return
	}
	b.shardPushing = false
	if m.durable {
		b.shardBacked = true
		b.shardDurable = true
		st.stats.ShardDurablePushes++
		s.metrics.shardDurable.Inc()
		s.reclaim(st, "", -1)
	}
}
