// Package storage implements DOoC's distributed data storage layer
// (Section III-B of the paper): immutable, block-structured one-dimensional
// arrays exposed to filters through interval leases with read or write
// permission, with prefetching, reference-counted LRU memory reclamation,
// an out-of-core scratch directory serviced by asynchronous I/O filters,
// and a partitioned (non-replicated) global map with random-peer lookup.
package storage

import (
	"fmt"
	"sort"
)

// span is a half-open byte range [Lo, Hi).
type span struct {
	Lo, Hi int64
}

func (s span) empty() bool { return s.Lo >= s.Hi }

func (s span) overlaps(o span) bool { return s.Lo < o.Hi && o.Lo < s.Hi }

// intervalSet is a set of disjoint, sorted, merged spans. It tracks which
// byte ranges of a block have been written (the immutable-array bookkeeping:
// every location is written at most once and cannot be read before written).
type intervalSet struct {
	spans []span
}

// add inserts s, returning an error if it overlaps an existing span —
// that is a double-write, which immutability forbids.
func (is *intervalSet) add(s span) error {
	if s.empty() {
		return fmt.Errorf("storage: empty interval [%d,%d)", s.Lo, s.Hi)
	}
	i := sort.Search(len(is.spans), func(i int) bool { return is.spans[i].Hi > s.Lo })
	if i < len(is.spans) && is.spans[i].overlaps(s) {
		return fmt.Errorf("storage: interval [%d,%d) overlaps already-written [%d,%d)",
			s.Lo, s.Hi, is.spans[i].Lo, is.spans[i].Hi)
	}
	// Insert at i, then merge with touching neighbors.
	is.spans = append(is.spans, span{})
	copy(is.spans[i+1:], is.spans[i:])
	is.spans[i] = s
	is.mergeAround(i)
	return nil
}

// mergeAround coalesces spans touching index i.
func (is *intervalSet) mergeAround(i int) {
	// Merge left.
	for i > 0 && is.spans[i-1].Hi == is.spans[i].Lo {
		is.spans[i-1].Hi = is.spans[i].Hi
		is.spans = append(is.spans[:i], is.spans[i+1:]...)
		i--
	}
	// Merge right.
	for i+1 < len(is.spans) && is.spans[i].Hi == is.spans[i+1].Lo {
		is.spans[i].Hi = is.spans[i+1].Hi
		is.spans = append(is.spans[:i+1], is.spans[i+2:]...)
	}
}

// covers reports whether [s.Lo, s.Hi) is entirely contained in the set.
func (is *intervalSet) covers(s span) bool {
	if s.empty() {
		return true
	}
	i := sort.Search(len(is.spans), func(i int) bool { return is.spans[i].Hi > s.Lo })
	return i < len(is.spans) && is.spans[i].Lo <= s.Lo && s.Hi <= is.spans[i].Hi
}

// coveredBytes returns the total number of bytes in the set.
func (is *intervalSet) coveredBytes() int64 {
	var n int64
	for _, s := range is.spans {
		n += s.Hi - s.Lo
	}
	return n
}

// full reports whether the set covers exactly [0, size).
func (is *intervalSet) full(size int64) bool {
	return len(is.spans) == 1 && is.spans[0].Lo == 0 && is.spans[0].Hi == size
}
