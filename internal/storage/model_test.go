package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Model-based property test: a random sequence of storage operations is
// checked against a trivial in-memory oracle. The storage layer may cache,
// evict, flush, and fetch however it likes — every read must still return
// exactly the bytes the oracle says were written.

// cellBytes is the granularity of the modeled intervals.
const cellBytes = 16

// modelArray is the oracle's view of one array.
type modelArray struct {
	info    ArrayInfo
	data    []byte
	written []bool // per cell
}

func (ma *modelArray) cellsPerBlock() int { return int(ma.info.BlockSize) / cellBytes }

// randomUnwrittenRun picks a run of unwritten cells inside one block.
func (ma *modelArray) randomUnwrittenRun(rng *rand.Rand) (lo, hi int64, ok bool) {
	blocks := ma.info.NumBlocks()
	for attempt := 0; attempt < 8; attempt++ {
		b := rng.Intn(blocks)
		cpb := ma.cellsPerBlock()
		start := b*cpb + rng.Intn(cpb)
		if ma.written[start] {
			continue
		}
		end := start
		maxEnd := (b + 1) * cpb
		for end+1 < maxEnd && !ma.written[end+1] && rng.Intn(3) > 0 {
			end++
		}
		return int64(start) * cellBytes, int64(end+1) * cellBytes, true
	}
	return 0, 0, false
}

// randomWrittenRun picks a run of written cells inside one block.
func (ma *modelArray) randomWrittenRun(rng *rand.Rand) (lo, hi int64, ok bool) {
	blocks := ma.info.NumBlocks()
	for attempt := 0; attempt < 8; attempt++ {
		b := rng.Intn(blocks)
		cpb := ma.cellsPerBlock()
		start := b*cpb + rng.Intn(cpb)
		if !ma.written[start] {
			continue
		}
		end := start
		maxEnd := (b + 1) * cpb
		for end+1 < maxEnd && ma.written[end+1] && rng.Intn(3) > 0 {
			end++
		}
		return int64(start) * cellBytes, int64(end+1) * cellBytes, true
	}
	return 0, 0, false
}

func TestStorageAgainstOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		s, err := NewLocal(Config{
			MemoryBudget: 512, // tiny: constant eviction churn
			ScratchDir:   dir,
			Seed:         seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()

		oracle := map[string]*modelArray{}
		names := []string{}
		const ops = 120
		for op := 0; op < ops; op++ {
			switch choice := rng.Intn(10); {
			case choice == 0 || len(names) == 0: // create
				name := fmt.Sprintf("m%d", len(names))
				blocks := 1 + rng.Intn(3)
				blockSize := int64(cellBytes * (1 + rng.Intn(4)))
				size := blockSize * int64(blocks)
				if err := s.Create(name, size, blockSize); err != nil {
					t.Fatalf("create %s: %v", name, err)
				}
				oracle[name] = &modelArray{
					info:    ArrayInfo{Name: name, Size: size, BlockSize: blockSize},
					data:    make([]byte, size),
					written: make([]bool, size/cellBytes),
				}
				names = append(names, name)
			case choice <= 3: // write an unwritten interval
				ma := oracle[names[rng.Intn(len(names))]]
				lo, hi, ok := ma.randomUnwrittenRun(rng)
				if !ok {
					continue
				}
				l, err := s.Request(ma.info.Name, lo, hi, PermWrite)
				if err != nil {
					t.Fatalf("write %s [%d,%d): %v", ma.info.Name, lo, hi, err)
				}
				rng.Read(l.Data)
				copy(ma.data[lo:hi], l.Data)
				for c := lo / cellBytes; c < hi/cellBytes; c++ {
					ma.written[c] = true
				}
				l.Release()
			case choice <= 6: // read a written interval
				ma := oracle[names[rng.Intn(len(names))]]
				lo, hi, ok := ma.randomWrittenRun(rng)
				if !ok {
					continue
				}
				l, err := s.Request(ma.info.Name, lo, hi, PermRead)
				if err != nil {
					t.Fatalf("read %s [%d,%d): %v", ma.info.Name, lo, hi, err)
				}
				if !bytes.Equal(l.Data, ma.data[lo:hi]) {
					t.Fatalf("seed %d: %s [%d,%d) mismatch", seed, ma.info.Name, lo, hi)
				}
				l.Release()
			case choice == 7: // flush
				name := names[rng.Intn(len(names))]
				if err := s.Flush(name); err != nil {
					t.Fatalf("flush %s: %v", name, err)
				}
			case choice == 8: // double-write attempt must fail
				ma := oracle[names[rng.Intn(len(names))]]
				lo, hi, ok := ma.randomWrittenRun(rng)
				if !ok {
					continue
				}
				if _, err := s.Request(ma.info.Name, lo, hi, PermWrite); err == nil {
					t.Fatalf("double write of %s [%d,%d) accepted", ma.info.Name, lo, hi)
				}
			case choice == 9: // explicit evict of a random block (best effort)
				ma := oracle[names[rng.Intn(len(names))]]
				_ = s.Evict(ma.info.Name, rng.Intn(ma.info.NumBlocks()))
			}
		}
		// Final sweep: every fully-written block must read back verbatim.
		for _, name := range names {
			ma := oracle[name]
			for b := 0; b < ma.info.NumBlocks(); b++ {
				bs := ma.info.BlockSpan(b)
				full := true
				for c := bs.Lo / cellBytes; c < bs.Hi/cellBytes; c++ {
					if !ma.written[c] {
						full = false
						break
					}
				}
				if !full {
					continue
				}
				l, err := s.Request(name, bs.Lo, bs.Hi, PermRead)
				if err != nil {
					t.Fatalf("final read %s block %d: %v", name, b, err)
				}
				if !bytes.Equal(l.Data, ma.data[bs.Lo:bs.Hi]) {
					t.Fatalf("seed %d: final sweep mismatch %s block %d", seed, name, b)
				}
				l.Release()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
