package storage

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"dooc/internal/compress"
	"dooc/internal/obs"
)

// seriesValue extracts one node's series value from a registry snapshot.
func seriesValue(t *testing.T, snap []obs.SeriesSnapshot, name string, node int) int64 {
	t.Helper()
	want := strconv.Itoa(node)
	for _, s := range snap {
		if s.Name != name {
			continue
		}
		for _, l := range s.Labels {
			if l.Key == "node" && l.Value == want {
				return s.Value
			}
		}
	}
	return 0
}

// assertRegistryConsistent checks the structural invariants every snapshot
// must satisfy: no negative counter or observation count, and histogram
// bucket counts summing exactly to the observation count.
func assertRegistryConsistent(t *testing.T, reg *obs.Registry) {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Kind == "counter" && s.Value < 0 {
			t.Errorf("%s = %d, counters must not go negative", s.ID(), s.Value)
		}
		if s.Kind != "histogram" {
			continue
		}
		var sum int64
		for _, c := range s.Buckets {
			if c < 0 {
				t.Errorf("%s has negative bucket count %d", s.ID(), c)
			}
			sum += c
		}
		if sum != s.Value {
			t.Errorf("%s buckets sum to %d, observation count is %d", s.ID(), sum, s.Value)
		}
	}
}

// TestMetricsReconcileWithStats drives a local store through writes, flushes,
// evictions, prefetches, and re-reads, then checks that every registry series
// agrees exactly with the loop's own Stats bookkeeping — the two are updated
// at the same call sites, so any divergence is an instrumentation bug.
func TestMetricsReconcileWithStats(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewLocal(Config{
		MemoryBudget: 2048, // two 1 KiB blocks
		ScratchDir:   t.TempDir(),
		IOWorkers:    2,
		Seed:         1,
		Obs:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	const blocks, blockSize = 8, 1024
	if err := s.Create("a", blocks*blockSize, blockSize); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < blocks; i++ {
		w, err := s.Request("a", int64(i*blockSize), int64((i+1)*blockSize), PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		for j := range w.Data {
			w.Data[j] = byte(i)
		}
		w.Release()
	}
	if err := s.Flush("a"); err != nil {
		t.Fatal(err)
	}

	// Two sequential passes over all blocks: with a two-block budget the
	// store must evict and re-load, exercising misses and implicit reads.
	// Reading each block twice in a row adds a hit per block.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < blocks; i++ {
			for rep := 0; rep < 2; rep++ {
				r, err := s.Request("a", int64(i*blockSize), int64((i+1)*blockSize), PermRead)
				if err != nil {
					t.Fatal(err)
				}
				if r.Data[0] != byte(i) {
					t.Fatalf("block %d corrupted: %d", i, r.Data[0])
				}
				r.Release()
			}
		}
	}

	// Prefetch a block that was evicted by the passes above, wait until the
	// load lands, then read it: one prefetch load and one prefetch hit.
	before := s.Stats()
	s.Prefetch("a", 0, blockSize)
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().BlockLoads == before.BlockLoads {
		if time.Now().After(deadline) {
			t.Fatal("prefetch never loaded block 0")
		}
		time.Sleep(time.Millisecond)
	}
	r, err := s.Request("a", 0, blockSize, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	r.Release()

	st := s.Stats()
	snap := reg.Snapshot()
	counters := []struct {
		name string
		want int64
	}{
		{"dooc_storage_read_requests_total", st.ReadRequests},
		{"dooc_storage_write_requests_total", st.WriteRequests},
		{"dooc_storage_cache_hits_total", st.Hits},
		{"dooc_storage_cache_misses_total", st.Misses},
		{"dooc_storage_evictions_total", st.Evictions},
		{"dooc_storage_block_loads_total", st.BlockLoads},
		{"dooc_storage_prefetch_issued_total", st.PrefetchIssued},
		{"dooc_storage_prefetch_loads_total", st.PrefetchLoads},
		{"dooc_storage_prefetch_hits_total", st.PrefetchHits},
		{"dooc_storage_disk_read_bytes_total", st.BytesReadDisk},
		{"dooc_storage_disk_write_bytes_total", st.BytesWrittenDisk},
		{"dooc_storage_peer_fetch_bytes_total", st.BytesFetchedPeer},
		{"dooc_storage_io_retries_total", st.IORetries},
	}
	for _, c := range counters {
		if got := seriesValue(t, snap, c.name, 0); got != c.want {
			t.Errorf("%s = %d, Stats says %d", c.name, got, c.want)
		}
	}

	// Workload-level invariants the paper's accounting depends on.
	if st.Hits+st.Misses != st.ReadRequests {
		t.Errorf("hits(%d) + misses(%d) != read requests(%d)", st.Hits, st.Misses, st.ReadRequests)
	}
	if st.PrefetchHits > st.PrefetchLoads {
		t.Errorf("prefetch hits(%d) > prefetch loads(%d)", st.PrefetchHits, st.PrefetchLoads)
	}
	if st.PrefetchHits < 1 {
		t.Errorf("prefetch hits = %d, the prefetched block was read", st.PrefetchHits)
	}
	if st.Evictions == 0 {
		t.Error("no evictions despite a two-block budget over eight blocks")
	}
	// Every request round-trips through client.Request, which observes the
	// lease-wait histogram exactly once per request.
	if got := reg.Sum("dooc_storage_lease_wait_seconds"); got != st.ReadRequests+st.WriteRequests {
		t.Errorf("lease wait observations = %d, want read+write requests = %d",
			got, st.ReadRequests+st.WriteRequests)
	}
	// Loads move whole blocks between disk and memory; the byte counters
	// must be exact block multiples.
	if st.BytesReadDisk%blockSize != 0 {
		t.Errorf("disk read bytes %d not a multiple of the block size", st.BytesReadDisk)
	}
	assertRegistryConsistent(t, reg)
}

// TestCompressMetricsReconcile drives a codec-configured store through a
// mixed spill (compressible and incompressible blocks), then checks the
// per-codec registry series reconcile with the loop's Stats bookkeeping and
// satisfy the compression invariant stored <= raw for every real codec.
func TestCompressMetricsReconcile(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewLocal(Config{
		MemoryBudget: 1 << 20,
		ScratchDir:   t.TempDir(),
		Seed:         1,
		Obs:          reg,
		Codec:        compress.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	const blockSize = 512
	smooth := smoothPayload(4 * blockSize)
	noise := make([]byte, 2*blockSize)
	rand.New(rand.NewSource(7)).Read(noise)
	for name, payload := range map[string][]byte{"smooth": smooth, "noise": noise} {
		if err := s.WriteArray(name, payload, blockSize); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(name); err != nil {
			t.Fatal(err)
		}
		for bi := 0; bi*blockSize < len(payload); bi++ {
			if err := s.Evict(name, bi); err != nil {
				t.Fatal(err)
			}
		}
		got, err := s.ReadAll(name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("%s round trip corrupted", name)
		}
	}

	st := s.Stats()
	if st.CompressBailouts == 0 {
		t.Fatal("random blocks never tripped the adaptive bail-out")
	}
	if st.CompressStoredBytes >= st.CompressRawBytes {
		t.Fatalf("stored %d >= raw %d: mixed spill did not shrink", st.CompressStoredBytes, st.CompressRawBytes)
	}

	// Registry family sums must equal the Stats the loop keeps — both are
	// updated at the same call sites.
	sums := []struct {
		name string
		want int64
	}{
		{"dooc_storage_compress_raw_bytes_total", st.CompressRawBytes},
		{"dooc_storage_compress_stored_bytes_total", st.CompressStoredBytes},
		{"dooc_storage_decompress_stored_bytes_total", st.DecompressStoredBytes},
		{"dooc_storage_decompress_raw_bytes_total", st.DecompressRawBytes},
		{"dooc_storage_compress_bailouts_total", st.CompressBailouts},
		{"dooc_storage_disk_write_bytes_total", st.BytesWrittenDisk},
		{"dooc_storage_disk_read_bytes_total", st.BytesReadDisk},
	}
	for _, c := range sums {
		if got := reg.Sum(c.name); got != c.want {
			t.Errorf("Sum(%s) = %d, Stats says %d", c.name, got, c.want)
		}
	}
	// Physical disk traffic is the frame traffic.
	if st.BytesWrittenDisk != st.CompressStoredBytes {
		t.Errorf("BytesWrittenDisk = %d, CompressStoredBytes = %d", st.BytesWrittenDisk, st.CompressStoredBytes)
	}
	if st.BytesReadDisk != st.DecompressStoredBytes {
		t.Errorf("BytesReadDisk = %d, DecompressStoredBytes = %d", st.BytesReadDisk, st.DecompressStoredBytes)
	}
	// Ratio gauge agrees with the cumulative stats.
	if want := 100 * st.CompressRawBytes / st.CompressStoredBytes; reg.Sum("dooc_storage_compress_ratio_percent") != want {
		t.Errorf("ratio gauge = %d, want %d", reg.Sum("dooc_storage_compress_ratio_percent"), want)
	}
	// Per-codec invariant: a real codec only keeps a block when it shrank, so
	// stored <= raw codec by codec. Raw (bail-out) frames pay the header.
	for _, name := range compress.Names() {
		raw := reg.SumWhere("dooc_storage_compress_raw_bytes_total", "codec", name)
		stored := reg.SumWhere("dooc_storage_compress_stored_bytes_total", "codec", name)
		if name != "raw" && stored > raw {
			t.Errorf("codec %s stored %d > raw %d", name, stored, raw)
		}
		// Every byte spilled was read back exactly once above.
		if dec := reg.SumWhere("dooc_storage_decompress_stored_bytes_total", "codec", name); dec != stored {
			t.Errorf("codec %s: read back %d frame bytes, wrote %d", name, dec, stored)
		}
	}
	// Both the default codec and the raw bail-out contributed series.
	if reg.SumWhere("dooc_storage_compress_stored_bytes_total", "codec", compress.Default().Name()) == 0 {
		t.Errorf("no stored bytes attributed to the default codec %q", compress.Default().Name())
	}
	if reg.SumWhere("dooc_storage_compress_stored_bytes_total", "codec", "raw") == 0 {
		t.Error("no stored bytes attributed to the raw bail-out")
	}
	assertRegistryConsistent(t, reg)
}

// TestMetricsReconcileAcrossNodes runs a distributed store network against a
// single shared registry and checks that per-node series reconcile with each
// node's Stats, including the peer-fetch counters a local store never touches.
func TestMetricsReconcileAcrossNodes(t *testing.T) {
	reg := obs.NewRegistry()
	stores, err := NewNetwork(3, func(node int, cfg *Config) {
		cfg.MemoryBudget = 1 << 20
		cfg.Seed = int64(node + 1)
		cfg.Obs = reg
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, s := range stores {
			s.Close()
		}
	})

	const blockSize = 512
	if err := stores[0].Create("x", 4*blockSize, blockSize); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		w, err := stores[i%len(stores)].Request("x", int64(i*blockSize), int64((i+1)*blockSize), PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		w.Data[0] = byte(i)
		w.Release()
	}
	// Every node reads every block: most reads resolve via peer fetches.
	for _, s := range stores {
		for i := 0; i < 4; i++ {
			r, err := s.Request("x", int64(i*blockSize), int64((i+1)*blockSize), PermRead)
			if err != nil {
				t.Fatal(err)
			}
			if r.Data[0] != byte(i) {
				t.Fatalf("node %d block %d corrupted", s.NodeID(), i)
			}
			r.Release()
		}
	}

	snap := reg.Snapshot()
	var totalPeerBytes int64
	for i, s := range stores {
		st := s.Stats()
		pairs := []struct {
			name string
			want int64
		}{
			{"dooc_storage_read_requests_total", st.ReadRequests},
			{"dooc_storage_write_requests_total", st.WriteRequests},
			{"dooc_storage_cache_hits_total", st.Hits},
			{"dooc_storage_cache_misses_total", st.Misses},
			{"dooc_storage_peer_probes_total", st.PeerProbes},
			{"dooc_storage_peer_probe_misses_total", st.PeerProbeMisses},
			{"dooc_storage_peer_fetch_bytes_total", st.BytesFetchedPeer},
			{"dooc_storage_block_loads_total", st.BlockLoads},
		}
		for _, p := range pairs {
			if got := seriesValue(t, snap, p.name, i); got != p.want {
				t.Errorf("node %d: %s = %d, Stats says %d", i, p.name, got, p.want)
			}
		}
		totalPeerBytes += st.BytesFetchedPeer
	}
	if totalPeerBytes == 0 {
		t.Error("no peer fetches in a 3-node all-read workload")
	}
	if got := reg.Sum("dooc_storage_peer_fetch_bytes_total"); got != totalPeerBytes {
		t.Errorf("registry peer bytes %d != summed stats %d", got, totalPeerBytes)
	}
	assertRegistryConsistent(t, reg)
}
