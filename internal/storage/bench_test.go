package storage

import (
	"bytes"
	"fmt"
	"testing"
)

// BenchmarkLeaseHit measures the request/release round-trip for resident
// data — the storage layer's hot path under the engine.
func BenchmarkLeaseHit(b *testing.B) {
	s, err := NewLocal(Config{MemoryBudget: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if err := s.WriteArray("hot", bytes.Repeat([]byte("h"), 4096), 4096); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := s.Request("hot", 0, 4096, PermRead)
		if err != nil {
			b.Fatal(err)
		}
		l.Release()
	}
}

// BenchmarkPeerFetch measures a cross-node block fetch (probe or directory
// redirect included), with re-eviction between fetches.
func BenchmarkPeerFetch(b *testing.B) {
	stores, err := NewNetwork(2, func(node int, cfg *Config) {
		cfg.MemoryBudget = 1 << 20
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	const size = 64 << 10
	if err := stores[0].WriteArray("remote", bytes.Repeat([]byte("r"), size), size); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := stores[1].Request("remote", 0, size, PermRead)
		if err != nil {
			b.Fatal(err)
		}
		l.Release()
		b.StopTimer()
		if err := stores[1].Evict("remote", 0); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkOOCReadThrough measures implicit disk reads through the I/O
// filters, evicting between iterations.
func BenchmarkOOCReadThrough(b *testing.B) {
	s, err := NewLocal(Config{MemoryBudget: 1 << 20, ScratchDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const size = 256 << 10
	if err := s.WriteArray("disk", bytes.Repeat([]byte("d"), size), size); err != nil {
		b.Fatal(err)
	}
	if err := s.Flush("disk"); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := s.Request("disk", 0, size, PermRead)
		if err != nil {
			b.Fatal(err)
		}
		l.Release()
		b.StopTimer()
		if err := s.Evict("disk", 0); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkCreateDelete measures array lifecycle overhead across a network.
func BenchmarkCreateDelete(b *testing.B) {
	stores, err := NewNetwork(4, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, s := range stores {
			s.Close()
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("tmp%d", i)
		if err := stores[0].Create(name, 1024, 1024); err != nil {
			b.Fatal(err)
		}
		if err := stores[0].Delete(name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFloat64View measures the full zero-copy read path — lease grant,
// unsafe float64 cast, release — the per-task storage cost of an executor.
// On a little-endian machine this should be alloc-free beyond the lease
// itself.
func BenchmarkFloat64View(b *testing.B) {
	s, err := NewLocal(Config{MemoryBudget: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const elems = 4096
	vals := make([]float64, elems)
	for i := range vals {
		vals[i] = float64(i)
	}
	buf := make([]byte, 8*elems)
	EncodeFloat64s(buf, vals)
	if err := s.WriteArray("view", buf, int64(len(buf))); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(8 * elems)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		l, err := s.Request("view", 0, 8*elems, PermRead)
		if err != nil {
			b.Fatal(err)
		}
		v := Float64View(l)
		sink += v[i%elems]
		l.Release()
	}
	_ = sink
}

// BenchmarkArenaGetPut measures the size-classed buffer arena's recycle
// round trip at a typical block size.
func BenchmarkArenaGetPut(b *testing.B) {
	a := NewArena()
	const size = 64 << 10
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := a.Get(size)
		a.Put(buf)
	}
}
