package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dooc/internal/compress"
	"dooc/internal/faults"
)

// stageArray writes a raw array file into dir so the store's startup scan
// discovers it.
func stageArray(t *testing.T, dir, name string, data []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name+arrayFileSuffix), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestIOReadSurvivesTransientInjectedErrors(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("dooc"), 64)
	stageArray(t, dir, "A", payload)
	inj := faults.New(faults.Config{Seed: 5, IOErrorRate: 1, MaxInjections: 2})
	st, err := NewLocal(Config{
		MemoryBudget:   1 << 20,
		ScratchDir:     dir,
		Seed:           1,
		IORetries:      3,
		IORetryBackoff: 100 * time.Microsecond,
		Faults:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got, err := st.ReadAll("A")
	if err != nil {
		t.Fatalf("read under injected faults: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted by retries")
	}
	if inj.Counts().IOErrors == 0 {
		t.Fatal("injector never fired")
	}
	if got := st.Stats().IORetries; got < 1 {
		t.Fatalf("Stats.IORetries = %d, want >= 1", got)
	}
}

func TestIOReadErrorIsAttributed(t *testing.T) {
	dir := t.TempDir()
	stageArray(t, dir, "B", bytes.Repeat([]byte{7}, 128))
	// Unlimited injections: every retry fails too, so the error is terminal.
	st, err := NewLocal(Config{
		MemoryBudget:   1 << 20,
		ScratchDir:     dir,
		Seed:           1,
		IORetries:      1,
		IORetryBackoff: 100 * time.Microsecond,
		Faults:         faults.New(faults.Config{Seed: 5, IOErrorRate: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, err = st.ReadAll("B")
	if err == nil {
		t.Fatal("read succeeded under permanent injected errors")
	}
	if !faults.IsInjected(err) {
		t.Fatalf("injected cause lost: %v", err)
	}
	msg := err.Error()
	for _, want := range []string{`"B"`, "block 0", "B" + arrayFileSuffix, "attempt"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func TestIOWriteErrorIsAttributed(t *testing.T) {
	dir := t.TempDir()
	st, err := NewLocal(Config{
		MemoryBudget:   1 << 20,
		ScratchDir:     dir,
		Seed:           1,
		IORetries:      1,
		IORetryBackoff: 100 * time.Microsecond,
		Faults:         faults.New(faults.Config{Seed: 8, IOErrorRate: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.WriteArray("W", make([]byte, 64), 64); err != nil {
		t.Fatal(err)
	}
	err = st.Flush("W")
	if err == nil {
		t.Fatal("flush succeeded under permanent injected errors")
	}
	msg := err.Error()
	for _, want := range []string{`"W"`, "block 0", "W" + arrayFileSuffix} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func TestIOFlushSurvivesTransientInjectedErrors(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(faults.Config{Seed: 3, IOErrorRate: 1, MaxInjections: 1})
	st, err := NewLocal(Config{
		MemoryBudget:   1 << 20,
		ScratchDir:     dir,
		Seed:           1,
		IORetries:      3,
		IORetryBackoff: 100 * time.Microsecond,
		Faults:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	payload := bytes.Repeat([]byte("fl"), 32)
	if err := st.WriteArray("F", payload, 64); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush("F"); err != nil {
		t.Fatalf("flush under injected faults: %v", err)
	}
	disk, err := os.ReadFile(filepath.Join(dir, "F"+arrayFileSuffix))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(disk, payload) {
		t.Fatal("flushed bytes wrong")
	}
	if got := st.Stats().IORetries; got < 1 {
		t.Fatalf("Stats.IORetries = %d, want >= 1", got)
	}
}

// stageCompressedArray spills payload through a codec-configured store so
// the scratch dir holds the per-block frame layout, then returns with the
// store closed.
func stageCompressedArray(t *testing.T, dir, name string, payload []byte, blockSize int64) {
	t.Helper()
	st, err := NewLocal(Config{
		MemoryBudget: 1 << 20,
		ScratchDir:   dir,
		Seed:         1,
		Codec:        compress.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteArray(name, payload, blockSize); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(name); err != nil {
		t.Fatal(err)
	}
	st.Close()
}

// TestCorruptCompressedBlockIsAttributed bit-flips a compressed scratch
// block on disk: the framed read must surface an attributed, non-transient
// error through the retry path — never decode garbage into the cache, and
// never burn retries on corruption.
func TestCorruptCompressedBlockIsAttributed(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("compressible-block-data."), 64)
	stageCompressedArray(t, dir, "C", payload, int64(len(payload)))

	blockFile := filepath.Join(dir, "C"+blockDirSuffix, "000000")
	frame, err := os.ReadFile(blockFile)
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)/2] ^= 0x20
	if err := os.WriteFile(blockFile, frame, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := NewLocal(Config{
		MemoryBudget:   1 << 20,
		ScratchDir:     dir,
		Seed:           2,
		IORetries:      3,
		IORetryBackoff: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, err = st.ReadAll("C")
	if err == nil {
		t.Fatal("read of a bit-flipped compressed block succeeded")
	}
	if !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("error does not wrap compress.ErrCorrupt: %v", err)
	}
	msg := err.Error()
	for _, want := range []string{`"C"`, "block 0", "C" + blockDirSuffix, "1 attempt(s)"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
	// Corruption is non-transient: the retry policy must not have spun.
	if got := st.Stats().IORetries; got != 0 {
		t.Fatalf("Stats.IORetries = %d for a corrupt frame, want 0", got)
	}
}

// TestTruncatedCompressedBlockIsAttributed truncates a compressed scratch
// block: same contract as corruption — attributed error, no garbage, no
// retries.
func TestTruncatedCompressedBlockIsAttributed(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("truncate-me-please......"), 64)
	stageCompressedArray(t, dir, "T", payload, int64(len(payload)))

	blockFile := filepath.Join(dir, "T"+blockDirSuffix, "000000")
	frame, err := os.ReadFile(blockFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(blockFile, frame[:len(frame)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := NewLocal(Config{
		MemoryBudget:   1 << 20,
		ScratchDir:     dir,
		Seed:           2,
		IORetries:      2,
		IORetryBackoff: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, err = st.ReadAll("T")
	if err == nil {
		t.Fatal("read of a truncated compressed block succeeded")
	}
	if !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("error does not wrap compress.ErrCorrupt: %v", err)
	}
	for _, want := range []string{`"T"`, "block 0", "1 attempt(s)"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	if got := st.Stats().IORetries; got != 0 {
		t.Fatalf("Stats.IORetries = %d for a truncated frame, want 0", got)
	}
}

// TestCompressedReadSurvivesTransientInjectedErrors checks the PR 1 retry
// path still heals flaky devices when the payload is framed.
func TestCompressedReadSurvivesTransientInjectedErrors(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("retry-framed-data-12345!"), 64)
	stageCompressedArray(t, dir, "F", payload, int64(len(payload)))

	inj := faults.New(faults.Config{Seed: 5, IOErrorRate: 1, MaxInjections: 2})
	st, err := NewLocal(Config{
		MemoryBudget:   1 << 20,
		ScratchDir:     dir,
		Seed:           2,
		IORetries:      3,
		IORetryBackoff: 100 * time.Microsecond,
		Faults:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got, err := st.ReadAll("F")
	if err != nil {
		t.Fatalf("framed read under injected faults: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("framed payload corrupted by retries")
	}
	if got := st.Stats().IORetries; got < 1 {
		t.Fatalf("Stats.IORetries = %d, want >= 1", got)
	}
}

func TestAbandonWriteLeaseAllowsRewrite(t *testing.T) {
	st, err := NewLocal(Config{MemoryBudget: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Create("ab", 16, 16); err != nil {
		t.Fatal(err)
	}
	l, err := st.Request("ab", 0, 8, PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	copy(l.Data, "GARBAGE!")
	l.Abandon()
	if !l.Released() {
		t.Fatal("Released() false after Abandon")
	}
	l.Abandon() // idempotent

	// A reader must still block: the abandoned interval was never published.
	read := make(chan []byte, 1)
	go func() {
		rl, err := st.Request("ab", 0, 8, PermRead)
		if err != nil {
			read <- nil
			return
		}
		data := append([]byte(nil), rl.Data...)
		rl.Release()
		read <- data
	}()
	select {
	case <-read:
		t.Fatal("abandoned write became readable")
	case <-time.After(30 * time.Millisecond):
	}

	// The same interval is writable again — no immutability violation.
	l2, err := st.Request("ab", 0, 8, PermWrite)
	if err != nil {
		t.Fatalf("rewrite after abandon: %v", err)
	}
	copy(l2.Data, "GOODDATA")
	l2.Release()
	select {
	case data := <-read:
		if string(data) != "GOODDATA" {
			t.Fatalf("read %q after abandon+rewrite (garbage leak?)", data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader never woke after rewrite")
	}
}

func TestAbandonAfterReleaseIsNoop(t *testing.T) {
	st, err := NewLocal(Config{MemoryBudget: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Create("nr", 8, 8); err != nil {
		t.Fatal(err)
	}
	l, err := st.Request("nr", 0, 8, PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	copy(l.Data, "12345678")
	l.Release()
	l.Abandon() // must not unpublish or panic
	got, err := st.ReadAll("nr")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "12345678" {
		t.Fatalf("read %q", got)
	}
}
