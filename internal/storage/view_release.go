//go:build !doocdebug

package storage

// Release-build view hooks: views alias lease bytes directly and release
// does no per-view bookkeeping. The doocdebug build tag swaps these for
// tracked copies that are poisoned on release (view_debug.go).

// viewDebugForceCopy is false in release builds: views alias in place.
const viewDebugForceCopy = false

// viewDebugMake never intercepts view construction in release builds.
func viewDebugMake(*Lease) ([]float64, bool) { return nil, false }

// invalidateViews is a no-op in release builds.
func invalidateViews(*Lease) {}

// ViewValid always reports true in release builds; only the doocdebug build
// tracks view lifetimes.
func ViewValid([]float64) bool { return true }
