package dag

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func ref(name string, block int) Ref { return Ref{Array: name, Block: block, Bytes: 100} }

func TestBuildDerivesDependencies(t *testing.T) {
	// producer writes a, consumer reads a: consumer depends on producer.
	g, err := Build([]*Task{
		{ID: "w", Outputs: []Ref{ref("a", 0)}},
		{ID: "r", Inputs: []Ref{ref("a", 0)}, Outputs: []Ref{ref("b", 0)}},
		{ID: "r2", Inputs: []Ref{ref("b", 0)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Preds("r"); len(got) != 1 || got[0] != "w" {
		t.Fatalf("Preds(r) = %v", got)
	}
	if got := g.Succs("r"); len(got) != 1 || got[0] != "r2" {
		t.Fatalf("Succs(r) = %v", got)
	}
	if got := g.Ready(); len(got) != 1 || got[0] != "w" {
		t.Fatalf("Ready = %v", got)
	}
}

func TestIndependentInputsAreReady(t *testing.T) {
	// Reading data nothing produces (seed data) yields no dependency.
	g, err := Build([]*Task{
		{ID: "t1", Inputs: []Ref{ref("seed", 0)}},
		{ID: "t2", Inputs: []Ref{ref("seed", 0)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Ready(); len(got) != 2 {
		t.Fatalf("Ready = %v", got)
	}
}

func TestDuplicateWriterRejected(t *testing.T) {
	_, err := Build([]*Task{
		{ID: "w1", Outputs: []Ref{ref("a", 0)}},
		{ID: "w2", Outputs: []Ref{ref("a", 0)}},
	})
	if err == nil || !strings.Contains(err.Error(), "single writer") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	_, err := Build([]*Task{{ID: "x"}, {ID: "x"}})
	if err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestCycleRejected(t *testing.T) {
	_, err := Build([]*Task{
		{ID: "a", Inputs: []Ref{ref("y", 0)}, Outputs: []Ref{ref("x", 0)}},
		{ID: "b", Inputs: []Ref{ref("x", 0)}, Outputs: []Ref{ref("y", 0)}},
	})
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestStartCompleteProtocol(t *testing.T) {
	g, err := Build([]*Task{
		{ID: "w", Outputs: []Ref{ref("a", 0)}},
		{ID: "r", Inputs: []Ref{ref("a", 0)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start("w")
	if len(g.Ready()) != 0 {
		t.Fatal("running task still in ready set")
	}
	g.Complete("w")
	if got := g.Ready(); len(got) != 1 || got[0] != "r" {
		t.Fatalf("Ready = %v", got)
	}
	g.Start("r")
	g.Complete("r")
	if !g.Done() {
		t.Fatal("not done after completing all tasks")
	}
}

func TestRequeueReturnsTaskToReadySet(t *testing.T) {
	g, err := Build([]*Task{
		{ID: "w", Outputs: []Ref{ref("a", 0)}},
		{ID: "r", Inputs: []Ref{ref("a", 0)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start("w")
	g.Requeue("w")
	if got := g.Ready(); len(got) != 1 || got[0] != "w" {
		t.Fatalf("Ready after requeue = %v, want [w]", got)
	}
	// Successor bookkeeping survives a requeue cycle.
	g.Start("w")
	g.Complete("w")
	if got := g.Ready(); len(got) != 1 || got[0] != "r" {
		t.Fatalf("Ready after complete = %v, want [r]", got)
	}
}

func TestRequeueNotRunningPanics(t *testing.T) {
	g, _ := Build([]*Task{{ID: "w"}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic requeueing unstarted task")
		}
	}()
	g.Requeue("w")
}

func TestStartNotReadyPanics(t *testing.T) {
	g, _ := Build([]*Task{
		{ID: "w", Outputs: []Ref{ref("a", 0)}},
		{ID: "r", Inputs: []Ref{ref("a", 0)}},
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic starting blocked task")
		}
	}()
	g.Start("r")
}

func TestCompleteWithoutStartPanics(t *testing.T) {
	g, _ := Build([]*Task{{ID: "w"}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic completing unstarted task")
		}
	}()
	g.Complete("w")
}

func TestHeavyInputsDefault(t *testing.T) {
	t1 := &Task{ID: "t", Inputs: []Ref{ref("a", 0), ref("b", 0)}}
	if len(t1.HeavyInputs()) != 2 {
		t.Fatal("HeavyInputs should default to all inputs")
	}
	t1.Heavy = []Ref{ref("a", 0)}
	if len(t1.HeavyInputs()) != 1 {
		t.Fatal("explicit Heavy not honored")
	}
}

func TestTopoRespectsEdges(t *testing.T) {
	g, err := Build([]*Task{
		{ID: "c", Inputs: []Ref{ref("b", 0)}},
		{ID: "a", Outputs: []Ref{ref("a", 0)}},
		{ID: "b", Inputs: []Ref{ref("a", 0)}, Outputs: []Ref{ref("b", 0)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := g.Topo()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range topo {
		pos[id] = i
	}
	if !(pos["a"] < pos["b"] && pos["b"] < pos["c"]) {
		t.Fatalf("topo = %v", topo)
	}
}

func TestCriticalPathLen(t *testing.T) {
	g, _ := Build([]*Task{
		{ID: "a", Outputs: []Ref{ref("x", 0)}},
		{ID: "b", Inputs: []Ref{ref("x", 0)}, Outputs: []Ref{ref("y", 0)}},
		{ID: "c", Inputs: []Ref{ref("y", 0)}},
		{ID: "solo"},
	})
	if got := g.CriticalPathLen(); got != 3 {
		t.Fatalf("CriticalPathLen = %d, want 3", got)
	}
}

// TestRandomDAGExecutionProperty: driving random layered DAGs through
// Ready/Start/Complete always respects dependencies and terminates.
func TestRandomDAGExecutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		layers := 1 + rng.Intn(5)
		perLayer := 1 + rng.Intn(5)
		var tasks []*Task
		for l := 0; l < layers; l++ {
			for i := 0; i < perLayer; i++ {
				tk := &Task{
					ID:      fmt.Sprintf("L%d-%d", l, i),
					Outputs: []Ref{ref(fmt.Sprintf("d%d-%d", l, i), 0)},
				}
				if l > 0 {
					// Depend on a random subset of the previous layer.
					for j := 0; j < perLayer; j++ {
						if rng.Intn(2) == 0 {
							tk.Inputs = append(tk.Inputs, ref(fmt.Sprintf("d%d-%d", l-1, j), 0))
						}
					}
				}
				tasks = append(tasks, tk)
			}
		}
		g, err := Build(tasks)
		if err != nil {
			return false
		}
		completedSet := map[string]bool{}
		steps := 0
		for !g.Done() {
			ready := g.Ready()
			if len(ready) == 0 {
				return false // deadlock
			}
			id := ready[rng.Intn(len(ready))]
			// All predecessors must already be complete.
			for _, p := range g.Preds(id) {
				if !completedSet[p] {
					return false
				}
			}
			g.Start(id)
			g.Complete(id)
			completedSet[id] = true
			steps++
			if steps > len(tasks) {
				return false
			}
		}
		return steps == len(tasks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkBuildLargeDAG measures DAG derivation on a wide layered graph.
func BenchmarkBuildLargeDAG(b *testing.B) {
	var tasks []*Task
	const layers, width = 20, 50
	for l := 0; l < layers; l++ {
		for i := 0; i < width; i++ {
			tk := &Task{
				ID:      fmt.Sprintf("L%d-%d", l, i),
				Outputs: []Ref{{Array: fmt.Sprintf("d%d-%d", l, i)}},
			}
			if l > 0 {
				for j := 0; j < 3; j++ {
					tk.Inputs = append(tk.Inputs, Ref{Array: fmt.Sprintf("d%d-%d", l-1, (i+j)%width)})
				}
			}
			tasks = append(tasks, tk)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(tasks); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tasks)), "tasks")
}
