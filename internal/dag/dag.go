// Package dag models DOoC's task graphs. Tasks declare the data (arrays or
// blocks) they read and write; the dependency structure is *derived* from
// that declaration — a task that reads a datum depends on the task that
// writes it. This is exactly the paper's global-scheduler input: "Each
// computation takes some data as an input and outputs some data. ... The
// input and output data information is used to derive a DAG of the tasks."
package dag

import (
	"fmt"
	"sort"
	"strconv"
)

// Ref names a datum: a block of an array (Block == Whole means the whole
// array). Bytes is the datum's size, used for affinity and cache decisions.
//
// Part subdivides a block for split tasks: when the local scheduler splits
// a task to match a node's parallelism (paper §III-C), each sub-task writes
// a disjoint Part of the same output block through an interval write lease.
// Part 0 is the undivided datum.
type Ref struct {
	Array string
	Block int
	Part  int
	Bytes int64
}

// Whole marks a Ref that covers its entire array.
const Whole = -1

// Key returns a map key identifying the datum: "array[block]" with a
// "#part" suffix for split refs. Built with strconv appends — Key runs once
// per ref per scheduler pass, where fmt's formatting state is measurable.
func (r Ref) Key() string {
	b := make([]byte, 0, len(r.Array)+16)
	b = append(b, r.Array...)
	b = append(b, '[')
	b = strconv.AppendInt(b, int64(r.Block), 10)
	b = append(b, ']')
	if r.Part != 0 {
		b = append(b, '#')
		b = strconv.AppendInt(b, int64(r.Part), 10)
	}
	return string(b)
}

// Task is a unit of computation with declared data in- and outputs.
type Task struct {
	ID string
	// Kind is an application label ("multiply", "sum", ...).
	Kind string
	// Inputs are data read; Outputs are data produced. A datum may be
	// produced by at most one task (immutable arrays: single writer).
	Inputs, Outputs []Ref
	// Heavy marks the subset of Inputs whose residency should drive
	// scheduling (e.g. 4 GB matrix blocks, not 100 KB vector parts).
	// nil means all inputs are heavy; an explicitly empty (non-nil) slice
	// means none are.
	Heavy []Ref
	// Flops estimates the task's computational cost.
	Flops float64
}

// HeavyInputs returns the cache-relevant inputs.
func (t *Task) HeavyInputs() []Ref {
	if t.Heavy != nil {
		return t.Heavy
	}
	return t.Inputs
}

// Graph is a derived task DAG with ready-set tracking.
type Graph struct {
	tasks map[string]*Task
	order []string // insertion order, the deterministic tie-break

	succ map[string][]string
	pred map[string][]string

	indegree  map[string]int
	completed map[string]bool
	running   map[string]bool
}

// refID is Ref.Key() as a comparable struct: Build indexes producers per
// datum for every ref of every task, and string keys would dominate its
// allocation profile.
type refID struct {
	array       string
	block, part int
}

func (r Ref) id() refID { return refID{r.Array, r.Block, r.Part} }

// Build derives the DAG. It rejects duplicate task IDs, multiple writers of
// one datum, and cycles.
func Build(tasks []*Task) (*Graph, error) {
	g := &Graph{
		tasks:     make(map[string]*Task, len(tasks)),
		order:     make([]string, 0, len(tasks)),
		succ:      make(map[string][]string, len(tasks)),
		pred:      make(map[string][]string, len(tasks)),
		indegree:  make(map[string]int, len(tasks)),
		completed: make(map[string]bool, len(tasks)),
		running:   make(map[string]bool, len(tasks)),
	}
	producer := make(map[refID]string, len(tasks))
	for _, t := range tasks {
		if t.ID == "" {
			return nil, fmt.Errorf("dag: task with empty ID")
		}
		if _, dup := g.tasks[t.ID]; dup {
			return nil, fmt.Errorf("dag: duplicate task %q", t.ID)
		}
		g.tasks[t.ID] = t
		g.order = append(g.order, t.ID)
		for _, out := range t.Outputs {
			if prev, taken := producer[out.id()]; taken {
				return nil, fmt.Errorf("dag: datum %s written by both %q and %q (immutable arrays have a single writer)", out.Key(), prev, t.ID)
			}
			producer[out.id()] = t.ID
		}
	}
	seen := make(map[string]bool, 8)
	for _, id := range g.order {
		t := g.tasks[id]
		clear(seen)
		for _, in := range t.Inputs {
			p, ok := producer[in.id()]
			if !ok || p == id || seen[p] {
				continue
			}
			seen[p] = true
			g.succ[p] = append(g.succ[p], id)
			g.pred[id] = append(g.pred[id], p)
			g.indegree[id]++
		}
	}
	if _, err := g.Topo(); err != nil {
		return nil, err
	}
	return g, nil
}

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.order) }

// Task returns a task by ID (nil if absent).
func (g *Graph) Task(id string) *Task { return g.tasks[id] }

// Tasks returns all tasks in insertion order.
func (g *Graph) Tasks() []*Task {
	out := make([]*Task, len(g.order))
	for i, id := range g.order {
		out[i] = g.tasks[id]
	}
	return out
}

// Preds returns the dependency task IDs of id.
func (g *Graph) Preds(id string) []string { return g.pred[id] }

// Succs returns the dependent task IDs of id.
func (g *Graph) Succs(id string) []string { return g.succ[id] }

// Ready returns, in insertion order, tasks whose predecessors have all
// completed and which are neither running nor completed.
func (g *Graph) Ready() []string { return g.ReadyAppend(nil) }

// ReadyAppend appends the ready task IDs to dst and returns it — the
// allocation-free form of Ready for schedulers that poll every wake-up.
func (g *Graph) ReadyAppend(dst []string) []string {
	for _, id := range g.order {
		if g.indegree[id] == 0 && !g.completed[id] && !g.running[id] {
			dst = append(dst, id)
		}
	}
	return dst
}

// Start marks a ready task as running. It panics on protocol misuse (not
// ready, already started) — those are scheduler bugs, not runtime
// conditions.
func (g *Graph) Start(id string) {
	if _, ok := g.tasks[id]; !ok {
		panic(fmt.Sprintf("dag: start of unknown task %q", id))
	}
	if g.indegree[id] != 0 || g.completed[id] || g.running[id] {
		panic(fmt.Sprintf("dag: task %q is not startable", id))
	}
	g.running[id] = true
}

// Requeue returns a running task to the ready set — the recovery path when
// its executor failed or its node died before completion. Successor
// indegrees were not touched by Start, so clearing the running mark is
// sufficient; the task becomes pickable again immediately.
func (g *Graph) Requeue(id string) {
	if !g.running[id] {
		panic(fmt.Sprintf("dag: requeue of task %q that is not running", id))
	}
	delete(g.running, id)
}

// Complete marks a running task finished, unlocking its successors.
func (g *Graph) Complete(id string) {
	if !g.running[id] {
		panic(fmt.Sprintf("dag: completion of task %q that is not running", id))
	}
	delete(g.running, id)
	g.completed[id] = true
	for _, s := range g.succ[id] {
		g.indegree[s]--
	}
}

// Done reports whether every task has completed.
func (g *Graph) Done() bool { return len(g.completed) == len(g.order) }

// Completed reports whether a specific task has completed.
func (g *Graph) Completed(id string) bool { return g.completed[id] }

// Topo returns a topological order (insertion-order stable) or an error if
// the graph has a cycle.
func (g *Graph) Topo() ([]string, error) {
	indeg := make(map[string]int, len(g.order))
	for id, d := range g.indegree {
		indeg[id] = d
	}
	// Re-derive base indegree including completed bookkeeping-free state.
	base := make(map[string]int, len(g.order))
	for _, id := range g.order {
		base[id] = len(g.pred[id])
	}
	var queue []string
	for _, id := range g.order {
		if base[id] == 0 {
			queue = append(queue, id)
		}
	}
	var out []string
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		out = append(out, id)
		for _, s := range g.succ[id] {
			base[s]--
			if base[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(out) != len(g.order) {
		remaining := make([]string, 0)
		for _, id := range g.order {
			done := false
			for _, o := range out {
				if o == id {
					done = true
					break
				}
			}
			if !done {
				remaining = append(remaining, id)
			}
		}
		sort.Strings(remaining)
		return nil, fmt.Errorf("dag: cycle involving tasks %v", remaining)
	}
	return out, nil
}

// CriticalPathLen returns the longest chain length (in tasks), a useful
// lower bound on schedule length for tests.
func (g *Graph) CriticalPathLen() int {
	topo, err := g.Topo()
	if err != nil {
		return 0
	}
	depth := make(map[string]int, len(topo))
	best := 0
	for _, id := range topo {
		d := 1
		for _, p := range g.pred[id] {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[id] = d
		if d > best {
			best = d
		}
	}
	return best
}
