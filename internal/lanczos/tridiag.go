// Package lanczos implements the k-step Lanczos procedure with full
// reorthogonalization — the iterative eigensolver whose SpMV kernel the
// paper's out-of-core middleware accelerates (Section II: MFDn applies
// Lanczos to the nuclear Hamiltonian; the cost is dominated by SpMV plus
// orthonormalization of Lanczos vectors).
//
// The package also contains the dense symmetric eigensolvers the small
// projected problems need: an implicit-shift QL solver for the tridiagonal
// Lanczos matrix, and a cyclic Jacobi solver used as an independent
// reference in tests.
package lanczos

import (
	"fmt"
	"math"
	"sort"
)

// TridiagEigen computes all eigenvalues and (optionally) eigenvectors of the
// symmetric tridiagonal matrix with diagonal d (length n) and sub-diagonal e
// (length n-1), using the implicit-shift QL algorithm (EISPACK tql2).
//
// If wantVectors is true, the returned z is column-major n×n: z[i*n+j] is
// component i of eigenvector j. Eigenvalues are returned in ascending order
// with eigenvectors permuted to match. Inputs are not modified.
func TridiagEigen(d, e []float64, wantVectors bool) (vals []float64, z []float64, err error) {
	n := len(d)
	if n == 0 {
		return nil, nil, fmt.Errorf("lanczos: empty tridiagonal matrix")
	}
	if len(e) != n-1 {
		return nil, nil, fmt.Errorf("lanczos: %d off-diagonals for dimension %d, want %d", len(e), n, n-1)
	}
	dd := append([]float64(nil), d...)
	// Shifted copy of e with a trailing zero slot, as tql2 expects.
	ee := make([]float64, n)
	copy(ee, e)
	if wantVectors {
		z = make([]float64, n*n)
		for i := 0; i < n; i++ {
			z[i*n+i] = 1
		}
	}

	const maxIter = 50
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Look for a negligible sub-diagonal element to split at.
			m := l
			for ; m < n-1; m++ {
				s := math.Abs(dd[m]) + math.Abs(dd[m+1])
				if math.Abs(ee[m]) <= math.SmallestNonzeroFloat64+2.22e-16*s {
					break
				}
			}
			if m == l {
				break
			}
			if iter >= maxIter {
				return nil, nil, fmt.Errorf("lanczos: QL failed to converge for eigenvalue %d", l)
			}
			// Form the implicit shift.
			g := (dd[l+1] - dd[l]) / (2 * ee[l])
			r := math.Hypot(g, 1)
			g = dd[m] - dd[l] + ee[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = math.Hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					// Recover from underflow.
					dd[i+1] -= p
					ee[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = dd[i+1] - p
				r = (dd[i]-g)*s + 2*c*b
				p = s * r
				dd[i+1] = g + p
				g = c*r - b
				if wantVectors {
					for k := 0; k < n; k++ {
						f := z[k*n+i+1]
						z[k*n+i+1] = s*z[k*n+i] + c*f
						z[k*n+i] = c*z[k*n+i] - s*f
					}
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			dd[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}

	// Sort ascending, permuting eigenvectors alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return dd[idx[a]] < dd[idx[b]] })
	vals = make([]float64, n)
	for i, j := range idx {
		vals[i] = dd[j]
	}
	if wantVectors {
		sorted := make([]float64, n*n)
		for col, j := range idx {
			for row := 0; row < n; row++ {
				sorted[row*n+col] = z[row*n+j]
			}
		}
		z = sorted
	}
	return vals, z, nil
}

// JacobiEigen computes all eigenvalues of a dense symmetric matrix
// (row-major n×n) by cyclic Jacobi rotations. O(n³) per sweep; intended as
// an independent test oracle, not a production path.
func JacobiEigen(a []float64, n int) ([]float64, error) {
	if len(a) != n*n {
		return nil, fmt.Errorf("lanczos: matrix length %d != %d²", len(a), n)
	}
	m := append([]float64(nil), a...)
	// Verify symmetry to catch misuse.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(m[i*n+j]-m[j*n+i]) > 1e-9*(1+math.Abs(m[i*n+j])) {
				return nil, fmt.Errorf("lanczos: matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i*n+j] * m[i*n+j]
			}
		}
		if off < 1e-24 {
			vals := make([]float64, n)
			for i := 0; i < n; i++ {
				vals[i] = m[i*n+i]
			}
			sort.Float64s(vals)
			return vals, nil
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := m[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				theta := (m[q*n+q] - m[p*n+p]) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp := m[k*n+p]
					akq := m[k*n+q]
					m[k*n+p] = c*akp - s*akq
					m[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk := m[p*n+k]
					aqk := m[q*n+k]
					m[p*n+k] = c*apk - s*aqk
					m[q*n+k] = s*apk + c*aqk
				}
			}
		}
	}
	return nil, fmt.Errorf("lanczos: Jacobi did not converge in %d sweeps", maxSweeps)
}
