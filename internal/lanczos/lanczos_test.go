package lanczos

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dooc/internal/sparse"
)

func TestTridiagEigenDiagonal(t *testing.T) {
	vals, _, err := TridiagEigen([]float64{3, 1, 2}, []float64{0, 0}, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v", vals)
		}
	}
}

func TestTridiagEigen2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	vals, z, err := TridiagEigen([]float64{2, 2}, []float64{1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Fatalf("vals = %v", vals)
	}
	// Eigenvector for 1 is (1,-1)/√2 up to sign.
	if math.Abs(math.Abs(z[0*2+0])-math.Sqrt(0.5)) > 1e-12 {
		t.Fatalf("z = %v", z)
	}
}

func TestTridiagEigenToeplitz(t *testing.T) {
	// d=2, e=-1 tridiagonal of size n has eigenvalues 2-2cos(jπ/(n+1)).
	n := 20
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = -1
	}
	vals, _, err := TridiagEigen(d, e, false)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= n; j++ {
		want := 2 - 2*math.Cos(float64(j)*math.Pi/float64(n+1))
		if math.Abs(vals[j-1]-want) > 1e-10 {
			t.Fatalf("vals[%d] = %v, want %v", j-1, vals[j-1], want)
		}
	}
}

func TestTridiagEigenVectorsAreEigenvectors(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = rng.NormFloat64() * 3
		}
		for i := range e {
			e[i] = rng.NormFloat64()
		}
		vals, z, err := TridiagEigen(d, e, true)
		if err != nil {
			return false
		}
		// Check T z_j = λ_j z_j.
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				tz := d[i] * z[i*n+j]
				if i > 0 {
					tz += e[i-1] * z[(i-1)*n+j]
				}
				if i < n-1 {
					tz += e[i] * z[(i+1)*n+j]
				}
				if math.Abs(tz-vals[j]*z[i*n+j]) > 1e-8*(1+math.Abs(vals[j])) {
					return false
				}
			}
		}
		// Ascending order.
		for j := 1; j < n; j++ {
			if vals[j] < vals[j-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTridiagEigenValidation(t *testing.T) {
	if _, _, err := TridiagEigen(nil, nil, false); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, _, err := TridiagEigen([]float64{1, 2}, []float64{}, false); err == nil {
		t.Error("wrong off-diagonal length accepted")
	}
}

func TestJacobiMatchesTridiag(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 8
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	dense := make([]float64, n*n)
	for i := 0; i < n; i++ {
		dense[i*n+i] = d[i]
		if i < n-1 {
			dense[i*n+i+1] = e[i]
			dense[(i+1)*n+i] = e[i]
		}
	}
	jv, err := JacobiEigen(dense, n)
	if err != nil {
		t.Fatal(err)
	}
	tv, _, err := TridiagEigen(d, e, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jv {
		if math.Abs(jv[i]-tv[i]) > 1e-9 {
			t.Fatalf("jacobi %v vs tridiag %v", jv, tv)
		}
	}
}

func TestJacobiRejectsAsymmetric(t *testing.T) {
	if _, err := JacobiEigen([]float64{1, 2, 3, 4}, 2); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
}

// symmetricTestMatrix builds a random symmetric sparse matrix.
func symmetricTestMatrix(t *testing.T, n, d int, seed int64) *sparse.CSR {
	t.Helper()
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: n, Cols: n, D: d, Seed: seed, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLanczosFullSpectrumSmall(t *testing.T) {
	// With k = n steps and full reorthogonalization, Lanczos recovers the
	// entire spectrum.
	n := 24
	m := symmetricTestMatrix(t, n, 2, 3)
	res, err := Solve(MatrixOperator{M: m}, Options{Steps: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := JacobiEigen(m.Dense(), n)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Eigenvalues) != n {
		t.Fatalf("got %d Ritz values, want %d", len(res.Eigenvalues), n)
	}
	for i := range want {
		if math.Abs(res.Eigenvalues[i]-want[i]) > 1e-8 {
			t.Fatalf("eig[%d] = %v, want %v", i, res.Eigenvalues[i], want[i])
		}
	}
}

func TestLanczosLowestEigenvaluesConverge(t *testing.T) {
	// k << n: the extreme Ritz values approximate the extreme eigenvalues.
	n := 120
	m := symmetricTestMatrix(t, n, 3, 7)
	res, err := Solve(MatrixOperator{M: m, Workers: 2}, Options{Steps: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := JacobiEigen(m.Dense(), n)
	if err != nil {
		t.Fatal(err)
	}
	// The 3 lowest should be well converged at k=60 for a 120-dim problem.
	for i := 0; i < 3; i++ {
		if math.Abs(res.Eigenvalues[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
			t.Fatalf("lowest[%d]: lanczos %v vs dense %v", i, res.Eigenvalues[i], want[i])
		}
	}
	if res.SpMVs != res.Steps {
		t.Errorf("SpMVs = %d, steps = %d", res.SpMVs, res.Steps)
	}
}

func TestLanczosRitzVectorsResiduals(t *testing.T) {
	n := 40
	m := symmetricTestMatrix(t, n, 2, 9)
	res, err := Solve(MatrixOperator{M: m}, Options{Steps: n, Seed: 3, WantVectors: true})
	if err != nil {
		t.Fatal(err)
	}
	// Verify the best-converged pair: A v ≈ λ v.
	v := res.Vectors[0]
	lambda := res.Eigenvalues[0]
	av := make([]float64, n)
	sparse.MulVec(m, v, av)
	worst := 0.0
	for i := range av {
		if r := math.Abs(av[i] - lambda*v[i]); r > worst {
			worst = r
		}
	}
	if worst > 1e-7*(1+math.Abs(lambda)) {
		t.Fatalf("Ritz pair residual %v too large", worst)
	}
	if res.Residuals[0] > 1e-7*(1+math.Abs(lambda)) {
		t.Fatalf("reported residual %v too large", res.Residuals[0])
	}
}

func TestLanczosInvariantSubspaceStopsEarly(t *testing.T) {
	// Identity matrix: Krylov space has dimension 1.
	var ts []sparse.Triplet
	for i := 0; i < 10; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 1})
	}
	m, err := sparse.FromTriplets(10, 10, ts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(MatrixOperator{M: m}, Options{Steps: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 {
		t.Fatalf("steps = %d, want 1 (invariant subspace)", res.Steps)
	}
	if math.Abs(res.Eigenvalues[0]-1) > 1e-12 {
		t.Fatalf("eig = %v", res.Eigenvalues)
	}
}

func TestLanczosOptionsValidation(t *testing.T) {
	m := symmetricTestMatrix(t, 4, 1, 1)
	if _, err := Solve(MatrixOperator{M: m}, Options{Steps: 0}); err == nil {
		t.Error("Steps=0 accepted")
	}
	if _, err := Solve(MatrixOperator{M: m}, Options{Steps: 2, X0: []float64{1}}); err == nil {
		t.Error("wrong X0 length accepted")
	}
	if _, err := Solve(MatrixOperator{M: m}, Options{Steps: 2, X0: make([]float64, 4)}); err == nil {
		t.Error("zero X0 accepted")
	}
}

func TestLanczosBasisOrthogonality(t *testing.T) {
	// Indirect check: with full reorthogonalization, running n steps on a
	// matrix with well-separated eigenvalues must not produce spurious
	// duplicate Ritz values (the signature of lost orthogonality).
	n := 60
	m := symmetricTestMatrix(t, n, 2, 11)
	res, err := Solve(MatrixOperator{M: m}, Options{Steps: n, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Eigenvalues); i++ {
		if res.Eigenvalues[i]-res.Eigenvalues[i-1] < -1e-10 {
			t.Fatal("eigenvalues not sorted")
		}
	}
	want, err := JacobiEigen(m.Dense(), n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(res.Eigenvalues[i]-want[i]) > 1e-7 {
			t.Fatalf("spectrum mismatch at %d: %v vs %v (orthogonality lost?)", i, res.Eigenvalues[i], want[i])
		}
	}
}

// BenchmarkTridiagEigen measures the QL eigensolver at typical Krylov sizes.
func BenchmarkTridiagEigen(b *testing.B) {
	const n = 200
	d := make([]float64, n)
	e := make([]float64, n-1)
	rng := rand.New(rand.NewSource(1))
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := TridiagEigen(d, e, true); err != nil {
			b.Fatal(err)
		}
	}
}

// orthogonalityLoss returns the largest |<v_i, v_j>| (i != j) in a basis.
func orthogonalityLoss(b *MemoryBasis) float64 {
	worst := 0.0
	for i := 0; i < b.Len(); i++ {
		vi, _ := b.Vector(i)
		for j := i + 1; j < b.Len(); j++ {
			vj, _ := b.Vector(j)
			if d := math.Abs(sparse.Dot(vi, vj)); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestReorthogonalizationIsLoadBearing demonstrates why MFDn pays the
// orthonormalization cost the paper counts: without reorthogonalization the
// Lanczos basis loses orthogonality by many orders of magnitude once Ritz
// pairs converge.
func TestReorthogonalizationIsLoadBearing(t *testing.T) {
	n := 200
	m := symmetricTestMatrix(t, n, 3, 17)
	full := &MemoryBasis{}
	if _, err := Solve(MatrixOperator{M: m}, Options{Steps: 150, Seed: 9, Basis: full}); err != nil {
		t.Fatal(err)
	}
	none := &MemoryBasis{}
	if _, err := Solve(MatrixOperator{M: m}, Options{Steps: 150, Seed: 9, Basis: none, SkipReorth: true}); err != nil {
		t.Fatal(err)
	}
	lossFull := orthogonalityLoss(full)
	lossNone := orthogonalityLoss(none)
	if lossFull > 1e-10 {
		t.Fatalf("full reorthogonalization lost orthogonality: %v", lossFull)
	}
	if lossNone < 1e4*lossFull {
		t.Fatalf("expected dramatic orthogonality loss without reorth: full=%v none=%v", lossFull, lossNone)
	}
}
