package lanczos

import (
	"math"
	"math/rand"
	"testing"

	"dooc/internal/sparse"
)

// composedOperator hides MatrixOperator's fused interfaces so Solve takes
// the Apply + Dot + Axpy branch.
type composedOperator struct{ m MatrixOperator }

func (c composedOperator) Dim() int                             { return c.m.Dim() }
func (c composedOperator) Apply(x []float64) ([]float64, error) { return c.m.Apply(x) }

// TestSolveFusedBitIdentical runs the same Lanczos problem through the
// fused kernel path and the composed path and requires every coefficient
// and eigenvalue to match bit-for-bit — the fusion is a strength reduction,
// not a numerical change.
func TestSolveFusedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 300
	var ts []sparse.Triplet
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 4 + rng.Float64()})
		if i+1 < n {
			v := rng.NormFloat64()
			ts = append(ts, sparse.Triplet{Row: i, Col: i + 1, Val: v}, sparse.Triplet{Row: i + 1, Col: i, Val: v})
		}
	}
	m, err := sparse.FromTriplets(n, n, ts)
	if err != nil {
		t.Fatal(err)
	}
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	opts := Options{Steps: 40, X0: x0}

	want, err := Solve(composedOperator{MatrixOperator{M: m}}, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 3} {
		pool := sparse.NewPool(workers)
		defer pool.Close()
		for _, op := range []Operator{
			MatrixOperator{M: m},                   // fused, inline nil pool
			MatrixOperator{M: m, Pool: pool},       // fused, persistent pool
			MatrixOperator{M: m, Workers: workers}, // fused via nil pool, workers ignored in fusion
		} {
			got, err := Solve(op, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Alphas) != len(want.Alphas) || len(got.Betas) != len(want.Betas) {
				t.Fatalf("fused run shape: %d alphas %d betas, want %d and %d",
					len(got.Alphas), len(got.Betas), len(want.Alphas), len(want.Betas))
			}
			for i := range want.Alphas {
				if math.Float64bits(got.Alphas[i]) != math.Float64bits(want.Alphas[i]) {
					t.Fatalf("alpha[%d]: fused %v composed %v", i, got.Alphas[i], want.Alphas[i])
				}
			}
			for i := range want.Betas {
				if math.Float64bits(got.Betas[i]) != math.Float64bits(want.Betas[i]) {
					t.Fatalf("beta[%d]: fused %v composed %v", i, got.Betas[i], want.Betas[i])
				}
			}
			for i := range want.Eigenvalues {
				if math.Float64bits(got.Eigenvalues[i]) != math.Float64bits(want.Eigenvalues[i]) {
					t.Fatalf("eigenvalue[%d]: fused %v composed %v", i, got.Eigenvalues[i], want.Eigenvalues[i])
				}
			}
		}
	}
}
