package lanczos

import (
	"fmt"
	"math"
	"math/rand"

	"dooc/internal/sparse"
)

// Operator is a linear operator y = A x. Implementations include the
// in-core sparse matrix below and the DOoC out-of-core SpMV (internal/core).
type Operator interface {
	Dim() int
	Apply(x []float64) ([]float64, error)
}

// FusedOperator is an Operator that can run the Lanczos three-term update
// as one fused kernel: w = A x, alpha = w·x, w -= alpha·x (and, when prev
// is non-nil, w -= beta·prev), returning w and alpha. Implementations MUST
// be bit-identical to the composed Apply + sparse.Dot + sparse.Axpy
// sequence — Solve uses the fusion as a pure strength reduction, never a
// numerical change.
type FusedOperator interface {
	Operator
	ApplyAxpyDot(x, prev []float64, beta float64) ([]float64, float64, error)
}

// DotOperator is an Operator that fuses the inner product the CG iteration
// needs right after its SpMV: ap = A p plus p·ap in one pass, bit-identical
// to Apply followed by sparse.Dot(p, ap).
type DotOperator interface {
	Operator
	ApplyDot(x []float64) ([]float64, float64, error)
}

// MatrixOperator adapts an in-core CSR matrix.
type MatrixOperator struct {
	M *sparse.CSR
	// Workers parallelizes the multiply (0 = sequential).
	Workers int
	// Pool, when non-nil, runs the kernels on a persistent stripe pool
	// instead of spawning goroutines per multiply; its width overrides
	// Workers.
	Pool *sparse.Pool
}

// Dim returns the operator dimension.
func (m MatrixOperator) Dim() int { return m.M.Rows }

// Apply computes A x.
func (m MatrixOperator) Apply(x []float64) ([]float64, error) {
	if m.M.Rows != m.M.Cols {
		return nil, fmt.Errorf("lanczos: operator matrix is %dx%d, need square", m.M.Rows, m.M.Cols)
	}
	y := make([]float64, m.M.Rows)
	if m.Pool != nil {
		m.Pool.MulVec(m.M, x, y)
	} else {
		sparse.MulVecParallel(m.M, x, y, m.Workers)
	}
	return y, nil
}

// ApplyAxpyDot implements FusedOperator: the SpMV, the reduction dot, and
// the orthogonalization AXPYs in one pass over the output. Per-row and
// per-element operation order match the composed sequence exactly, so the
// result is bit-identical (see internal/sparse.MulVecAxpyDot).
func (m MatrixOperator) ApplyAxpyDot(x, prev []float64, beta float64) ([]float64, float64, error) {
	if m.M.Rows != m.M.Cols {
		return nil, 0, fmt.Errorf("lanczos: operator matrix is %dx%d, need square", m.M.Rows, m.M.Cols)
	}
	y := make([]float64, m.M.Rows)
	alpha := m.Pool.MulVecAxpyDot(m.M, x, prev, beta, y)
	return y, alpha, nil
}

// ApplyDot implements DotOperator: y = A x and x·y in one kernel call.
func (m MatrixOperator) ApplyDot(x []float64) ([]float64, float64, error) {
	if m.M.Rows != m.M.Cols {
		return nil, 0, fmt.Errorf("lanczos: operator matrix is %dx%d, need square", m.M.Rows, m.M.Cols)
	}
	y := make([]float64, m.M.Rows)
	dot := m.Pool.MulVecDot(m.M, x, y)
	return y, dot, nil
}

var (
	_ FusedOperator = MatrixOperator{}
	_ DotOperator   = MatrixOperator{}
)

// Basis stores the growing set of Lanczos vectors. The default keeps them
// in memory; out-of-core implementations (e.g. internal/core.BasisStore)
// keep them in DOoC storage arrays so the full reorthogonalization of very
// long runs does not need k·dim doubles resident — the memory the paper's
// Table I attributes to "local Lanczos vectors".
type Basis interface {
	// Append stores the next basis vector (index Len()).
	Append(v []float64) error
	// Len reports how many vectors are stored.
	Len() int
	// Vector returns basis vector j. The returned slice must be treated as
	// read-only and not retained across calls.
	Vector(j int) ([]float64, error)
}

// MemoryBasis is the default in-core basis.
type MemoryBasis struct {
	vs [][]float64
}

// Append implements Basis.
func (m *MemoryBasis) Append(v []float64) error {
	m.vs = append(m.vs, append([]float64(nil), v...))
	return nil
}

// Len implements Basis.
func (m *MemoryBasis) Len() int { return len(m.vs) }

// Vector implements Basis.
func (m *MemoryBasis) Vector(j int) ([]float64, error) { return m.vs[j], nil }

// Options tunes Solve.
type Options struct {
	// Steps is k, the Krylov subspace size (required, >= 1).
	Steps int
	// Seed randomizes the starting vector (used when X0 is nil).
	Seed int64
	// X0 is an explicit starting vector.
	X0 []float64
	// WantVectors requests Ritz vectors alongside values.
	WantVectors bool
	// Basis overrides where Lanczos vectors are kept (nil: in memory).
	Basis Basis
	// SkipReorth disables full reorthogonalization, leaving only the
	// three-term recurrence. This is cheaper per step but loses basis
	// orthogonality once Ritz pairs converge, producing spurious duplicate
	// eigenvalues — the instability MFDn pays the orthonormalization cost
	// to avoid (kept here for the reorthogonalization ablation/tests).
	SkipReorth bool
}

// Result holds the output of a Lanczos run.
type Result struct {
	// Eigenvalues are the Ritz values in ascending order.
	Eigenvalues []float64
	// Vectors, when requested, are the Ritz vectors (column i approximates
	// the eigenvector of Eigenvalues[i]); each has length Dim.
	Vectors [][]float64
	// Residuals estimates ‖A v − λ v‖ for each Ritz pair via the classic
	// |β_k · s_{k,i}| bound.
	Residuals []float64
	// Alphas and Betas are the tridiagonal coefficients (diagnostics).
	Alphas, Betas []float64
	// Steps is the number of Lanczos steps actually performed (may be less
	// than requested if an invariant subspace was found).
	Steps int
	// SpMVs counts operator applications.
	SpMVs int
}

// Solve runs k-step Lanczos with full reorthogonalization on op.
//
// Full reorthogonalization is what MFDn does (the paper counts the
// "orthonormalization of Lanczos vectors" as the second-largest cost after
// SpMV); it keeps the basis numerically orthogonal at O(k·dim) extra work
// per step.
func Solve(op Operator, opts Options) (*Result, error) {
	n := op.Dim()
	if n <= 0 {
		return nil, fmt.Errorf("lanczos: operator has dimension %d", n)
	}
	k := opts.Steps
	if k <= 0 {
		return nil, fmt.Errorf("lanczos: Steps must be positive, got %d", k)
	}
	if k > n {
		k = n
	}

	v := make([]float64, n)
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return nil, fmt.Errorf("lanczos: X0 has length %d, want %d", len(opts.X0), n)
		}
		copy(v, opts.X0)
	} else {
		rng := rand.New(rand.NewSource(opts.Seed ^ 0x1a2c))
		for i := range v {
			v[i] = rng.NormFloat64()
		}
	}
	nrm := sparse.Norm2(v)
	if nrm == 0 {
		return nil, fmt.Errorf("lanczos: zero starting vector")
	}
	sparse.Scale(1/nrm, v)

	basis := opts.Basis
	if basis == nil {
		basis = &MemoryBasis{}
	}
	if basis.Len() != 0 {
		return nil, fmt.Errorf("lanczos: basis already holds %d vectors", basis.Len())
	}
	if err := basis.Append(v); err != nil {
		return nil, fmt.Errorf("lanczos: storing v1: %w", err)
	}
	// The current and previous vectors stay resident; the rest of the basis
	// is streamed from the Basis for reorthogonalization.
	cur := append([]float64(nil), v...)
	var prev []float64
	var alphas, betas []float64
	spmvs := 0

	fop, fused := op.(FusedOperator)
	for j := 0; j < k; j++ {
		var w []float64
		var alpha float64
		var err error
		if fused {
			// One fused kernel for SpMV + dot + both orthogonalization AXPYs.
			// FusedOperator implementations are bit-identical to the composed
			// branch below, so both paths produce the same coefficients.
			var bprev []float64
			var b0 float64
			if j > 0 {
				bprev, b0 = prev, betas[j-1]
			}
			w, alpha, err = fop.ApplyAxpyDot(cur, bprev, b0)
			if err != nil {
				return nil, fmt.Errorf("lanczos: fused SpMV at step %d: %w", j+1, err)
			}
			spmvs++
			if len(w) != n {
				return nil, fmt.Errorf("lanczos: operator returned %d entries, want %d", len(w), n)
			}
			alphas = append(alphas, alpha)
		} else {
			w, err = op.Apply(cur)
			if err != nil {
				return nil, fmt.Errorf("lanczos: SpMV at step %d: %w", j+1, err)
			}
			spmvs++
			if len(w) != n {
				return nil, fmt.Errorf("lanczos: operator returned %d entries, want %d", len(w), n)
			}
			alpha = sparse.Dot(w, cur)
			alphas = append(alphas, alpha)
			sparse.Axpy(-alpha, cur, w)
			if j > 0 {
				sparse.Axpy(-betas[j-1], prev, w)
			}
		}
		// Full reorthogonalization (two passes of classical Gram-Schmidt,
		// the "twice is enough" rule), streaming the basis.
		if !opts.SkipReorth {
			for pass := 0; pass < 2; pass++ {
				for bi := 0; bi < basis.Len(); bi++ {
					b, err := basis.Vector(bi)
					if err != nil {
						return nil, fmt.Errorf("lanczos: loading basis vector %d: %w", bi, err)
					}
					c := sparse.Dot(w, b)
					if c != 0 {
						sparse.Axpy(-c, b, w)
					}
				}
			}
		}
		beta := sparse.Norm2(w)
		if j == k-1 {
			betas = append(betas, beta)
			break
		}
		if beta < 1e-13*(1+math.Abs(alpha)) {
			// Invariant subspace: the Krylov space is exhausted.
			betas = append(betas, 0)
			break
		}
		betas = append(betas, beta)
		sparse.Scale(1/beta, w)
		if err := basis.Append(w); err != nil {
			return nil, fmt.Errorf("lanczos: storing v%d: %w", j+2, err)
		}
		prev, cur = cur, w
	}

	steps := len(alphas)
	vals, z, err := TridiagEigen(alphas, betas[:steps-1], true)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Eigenvalues: vals,
		Alphas:      alphas,
		Betas:       betas,
		Steps:       steps,
		SpMVs:       spmvs,
	}
	lastBeta := betas[steps-1]
	res.Residuals = make([]float64, steps)
	for i := 0; i < steps; i++ {
		res.Residuals[i] = math.Abs(lastBeta * z[(steps-1)*steps+i])
	}
	if opts.WantVectors {
		res.Vectors = make([][]float64, steps)
		for col := range res.Vectors {
			res.Vectors[col] = make([]float64, n)
		}
		// Stream each basis vector once, scattering into every Ritz vector.
		for row := 0; row < steps; row++ {
			b, err := basis.Vector(row)
			if err != nil {
				return nil, fmt.Errorf("lanczos: loading basis vector %d: %w", row, err)
			}
			for col := 0; col < steps; col++ {
				sparse.Axpy(z[row*steps+col], b, res.Vectors[col])
			}
		}
	}
	return res, nil
}

// Lowest returns the m smallest Ritz values from a result.
func (r *Result) Lowest(m int) []float64 {
	if m > len(r.Eigenvalues) {
		m = len(r.Eigenvalues)
	}
	return r.Eigenvalues[:m]
}
