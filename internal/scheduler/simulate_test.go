package scheduler

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dooc/internal/dag"
	"dooc/internal/spmv"
)

// fig5Config is the paper's Fig. 5 scenario: K=3 nodes, row-partitioned,
// each node's memory holds a single sub-matrix at a time.
func fig5Config(iters int) spmv.ProgramConfig {
	return spmv.ProgramConfig{K: 3, Iters: iters, SubBytes: 1000, VecBytes: 8, FlopsPerMult: 1}
}

func simulateSpMV(t *testing.T, cfg spmv.ProgramConfig, cacheSubMatrices int, reorder bool) *Plan {
	t.Helper()
	g, err := spmv.Graph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Simulate(g, spmv.RowAssignment(cfg), cfg.K, int64(cacheSubMatrices)*cfg.SubBytes, reorder, Costs{
		LoadSecondsPerByte: 0.003, // load = 3s per sub-matrix: dominates
		RunSeconds:         func(tk *dag.Task) float64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestFig5RegularPolicyLoads: FIFO order reloads every sub-matrix every
// iteration — 3 loads per node per iteration (Fig. 5a).
func TestFig5RegularPolicyLoads(t *testing.T) {
	plan := simulateSpMV(t, fig5Config(2), 1, false)
	for n, loads := range plan.LoadsPerNode {
		if loads != 6 {
			t.Errorf("node %d: %d loads, want 6 (3 per iteration)", n, loads)
		}
	}
}

// TestFig5BackAndForthSavesLoads: with reordering, the second and later
// iterations traverse the sub-matrices backwards, reusing the boundary
// sub-matrix: 3 loads for the first iteration, 2 for each subsequent one.
// This is the paper's headline scheduling result ("This plan is
// automatically discovered and executed by the DOoC middleware").
func TestFig5BackAndForthSavesLoads(t *testing.T) {
	for iters := 2; iters <= 5; iters++ {
		plan := simulateSpMV(t, fig5Config(iters), 1, true)
		want := 3 + 2*(iters-1)
		for n, loads := range plan.LoadsPerNode {
			if loads != want {
				t.Errorf("iters=%d node %d: %d loads, want %d", iters, n, loads, want)
			}
		}
	}
}

// TestFig5TraversalActuallyReverses inspects the multiply order on one node:
// consecutive iterations must visit columns in opposite orders.
func TestFig5TraversalActuallyReverses(t *testing.T) {
	plan := simulateSpMV(t, fig5Config(3), 1, true)
	var cols []string
	for _, op := range plan.NodeOps(0) {
		if op.Kind == OpRun && strings.HasPrefix(op.Task, "mult:") {
			cols = append(cols, op.Task)
		}
	}
	if len(cols) != 9 {
		t.Fatalf("node 0 ran %d multiplies, want 9", len(cols))
	}
	// Columns are the last field of mult:t:u:v.
	col := func(id string) byte { return id[len(id)-1] }
	it1 := []byte{col(cols[0]), col(cols[1]), col(cols[2])}
	it2 := []byte{col(cols[3]), col(cols[4]), col(cols[5])}
	it3 := []byte{col(cols[6]), col(cols[7]), col(cols[8])}
	if !(it2[0] == it1[2] && it2[2] == it1[0]) {
		t.Errorf("iteration 2 did not start where iteration 1 ended: %c%c%c then %c%c%c",
			it1[0], it1[1], it1[2], it2[0], it2[1], it2[2])
	}
	if !(it3[0] == it2[2] && it3[2] == it2[0]) {
		t.Errorf("iteration 3 did not reverse iteration 2: %c%c%c then %c%c%c",
			it2[0], it2[1], it2[2], it3[0], it3[1], it3[2])
	}
}

// TestWholeMatrixCachedLoadsOnce: with memory for all 3 sub-matrices, each
// is loaded exactly once regardless of iteration count.
func TestWholeMatrixCachedLoadsOnce(t *testing.T) {
	plan := simulateSpMV(t, fig5Config(4), 3, true)
	for n, loads := range plan.LoadsPerNode {
		if loads != 3 {
			t.Errorf("node %d: %d loads, want 3", n, loads)
		}
	}
}

// TestReorderingNeverIncreasesLoads compares the two policies across
// random SpMV shapes.
func TestReorderingNeverIncreasesLoads(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := spmv.ProgramConfig{
			K:        2 + rng.Intn(3),
			Iters:    1 + rng.Intn(4),
			SubBytes: 1000,
			VecBytes: 8,
		}
		cache := int64(1+rng.Intn(cfg.K)) * cfg.SubBytes
		mk := func(reorder bool) int {
			g, err := spmv.Graph(cfg)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := Simulate(g, spmv.RowAssignment(cfg), cfg.K, cache, reorder, Costs{LoadSecondsPerByte: 0.001})
			if err != nil {
				t.Fatal(err)
			}
			return plan.TotalLoads()
		}
		return mk(true) <= mk(false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSimulateRespectsDependencies: no task starts before its predecessors
// finish, on random schedules.
func TestSimulateRespectsDependencies(t *testing.T) {
	cfg := spmv.ProgramConfig{K: 3, Iters: 3, SubBytes: 500, VecBytes: 8}
	g, err := spmv.Graph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Simulate(g, spmv.RowAssignment(cfg), cfg.K, cfg.SubBytes, true, Costs{LoadSecondsPerByte: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the graph (Simulate consumed it) to read dependencies.
	g2, _ := spmv.Graph(cfg)
	starts := map[string]float64{}
	for _, op := range plan.Ops {
		if op.Kind == OpRun {
			starts[op.Task] = op.Start
		}
	}
	for id, start := range starts {
		for _, p := range g2.Preds(id) {
			if plan.TaskFinish[p] > start+1e-9 {
				t.Errorf("task %s started at %v before pred %s finished at %v", id, start, p, plan.TaskFinish[p])
			}
		}
	}
	if plan.Makespan <= 0 {
		t.Error("zero makespan")
	}
}

// TestSimulateNoOverlapPerNode: a node runs one op at a time.
func TestSimulateNoOverlapPerNode(t *testing.T) {
	cfg := fig5Config(2)
	plan := simulateSpMV(t, cfg, 1, true)
	for n := 0; n < cfg.K; n++ {
		ops := plan.NodeOps(n)
		for i := 1; i < len(ops); i++ {
			if ops[i].Start < ops[i-1].End-1e-9 {
				t.Errorf("node %d: op %d starts %v before previous ends %v", n, i, ops[i].Start, ops[i-1].End)
			}
		}
	}
}

func TestSimulateMissingAssignment(t *testing.T) {
	g, _ := dag.Build([]*dag.Task{{ID: "t"}})
	if _, err := Simulate(g, map[string]int{}, 1, 100, true, Costs{}); err == nil {
		t.Fatal("missing assignment accepted")
	}
}
