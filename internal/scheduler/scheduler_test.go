package scheduler

import (
	"testing"

	"dooc/internal/dag"
)

func mkTask(id string, heavyArrays ...string) *dag.Task {
	t := &dag.Task{ID: id}
	for _, a := range heavyArrays {
		r := dag.Ref{Array: a, Block: 0, Bytes: 100}
		t.Inputs = append(t.Inputs, r)
		t.Heavy = append(t.Heavy, r)
	}
	return t
}

func TestAffinityPlacesTasksWithTheirData(t *testing.T) {
	tasks := []*dag.Task{
		mkTask("t0", "a"),
		mkTask("t1", "b"),
		mkTask("t2", "a", "b"), // a on 0 (100B), b on 1 (100B): tie -> less loaded
	}
	where := map[string]int{"a": 0, "b": 1}
	assign := Affinity(tasks, 2, func(r dag.Ref) (int, bool) {
		n, ok := where[r.Array]
		return n, ok
	})
	if assign["t0"] != 0 {
		t.Errorf("t0 on node %d, want 0", assign["t0"])
	}
	if assign["t1"] != 1 {
		t.Errorf("t1 on node %d, want 1", assign["t1"])
	}
}

func TestAffinityPrefersMajorityBytes(t *testing.T) {
	big := dag.Ref{Array: "big", Block: 0, Bytes: 1000}
	small := dag.Ref{Array: "small", Block: 0, Bytes: 10}
	task := &dag.Task{ID: "t", Inputs: []dag.Ref{big, small}}
	assign := Affinity([]*dag.Task{task}, 2, func(r dag.Ref) (int, bool) {
		if r.Array == "big" {
			return 1, true
		}
		return 0, true
	})
	if assign["t"] != 1 {
		t.Fatalf("task placed on %d, want 1 (hosts 1000 of 1010 input bytes)", assign["t"])
	}
}

func TestAffinityBalancesDataFreeTasks(t *testing.T) {
	var tasks []*dag.Task
	for i := 0; i < 10; i++ {
		tasks = append(tasks, mkTask(string(rune('a'+i))))
	}
	assign := Affinity(tasks, 2, func(dag.Ref) (int, bool) { return 0, false })
	counts := map[int]int{}
	for _, n := range assign {
		counts[n]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("unbalanced placement: %v", counts)
	}
}

func TestRoundRobin(t *testing.T) {
	tasks := []*dag.Task{mkTask("a"), mkTask("b"), mkTask("c")}
	assign := RoundRobin(tasks, 2)
	if assign["a"] != 0 || assign["b"] != 1 || assign["c"] != 0 {
		t.Fatalf("assign = %v", assign)
	}
}

func TestPolicyPrefersResident(t *testing.T) {
	p := NewPolicy()
	ready := []*dag.Task{mkTask("cold", "X"), mkTask("hot", "Y")}
	got := p.Pick(ready, func(r dag.Ref) bool { return r.Array == "Y" })
	if got.ID != "hot" {
		t.Fatalf("picked %s, want hot", got.ID)
	}
}

func TestPolicyMRUTieBreak(t *testing.T) {
	p := NewPolicy()
	// Nothing resident; "b" used more recently than "a".
	p.Touch([]dag.Ref{{Array: "a", Block: 0, Bytes: 1}})
	p.Touch([]dag.Ref{{Array: "b", Block: 0, Bytes: 1}})
	ready := []*dag.Task{mkTask("ta", "a"), mkTask("tb", "b")}
	got := p.Pick(ready, func(dag.Ref) bool { return false })
	if got.ID != "tb" {
		t.Fatalf("picked %s, want tb (MRU-first)", got.ID)
	}
}

func TestPolicyFIFOWhenReorderDisabled(t *testing.T) {
	p := NewPolicy()
	p.Reorder = false
	p.Touch([]dag.Ref{{Array: "b", Block: 0, Bytes: 1}})
	ready := []*dag.Task{mkTask("first", "a"), mkTask("second", "b")}
	got := p.Pick(ready, func(dag.Ref) bool { return false })
	if got.ID != "first" {
		t.Fatalf("picked %s, want first", got.ID)
	}
}

func TestPolicyEmptyReady(t *testing.T) {
	p := NewPolicy()
	if p.Pick(nil, func(dag.Ref) bool { return false }) != nil {
		t.Fatal("Pick(nil) != nil")
	}
}

func TestPrefetchTargets(t *testing.T) {
	p := NewPolicy()
	ready := []*dag.Task{
		mkTask("t1", "m1"),
		mkTask("t2", "m2"),
		mkTask("t3", "m1"), // duplicate heavy ref must not repeat
		mkTask("t4", "m3"),
	}
	resident := func(r dag.Ref) bool { return r.Array == "m2" }
	got := p.PrefetchTargets(ready, resident, 2)
	if len(got) != 2 {
		t.Fatalf("targets = %v", got)
	}
	seen := map[string]bool{}
	for _, r := range got {
		if r.Array == "m2" {
			t.Fatal("prefetched a resident ref")
		}
		if seen[r.Array] {
			t.Fatal("duplicate prefetch target")
		}
		seen[r.Array] = true
	}
	if p.PrefetchTargets(ready, resident, 0) != nil {
		t.Fatal("window 0 should yield nothing")
	}
}

func TestSimCacheLRU(t *testing.T) {
	c := NewSimCache(200)
	a := dag.Ref{Array: "a", Block: 0, Bytes: 100}
	b := dag.Ref{Array: "b", Block: 0, Bytes: 100}
	d := dag.Ref{Array: "d", Block: 0, Bytes: 100}
	if !c.Use(a) || !c.Use(b) {
		t.Fatal("first uses should load")
	}
	if c.Use(a) {
		t.Fatal("second use of a should hit")
	}
	// Loading d evicts LRU = b.
	if !c.Use(d) {
		t.Fatal("d should load")
	}
	if c.Resident(b) {
		t.Fatal("b should have been evicted (LRU)")
	}
	if !c.Resident(a) || !c.Resident(d) {
		t.Fatal("a and d should be resident")
	}
	if c.Loads != 3 || c.LoadedBytes != 300 {
		t.Fatalf("loads=%d bytes=%d", c.Loads, c.LoadedBytes)
	}
}

func TestSimCacheNeverEvictsOnlyEntry(t *testing.T) {
	c := NewSimCache(10) // smaller than any block
	big := dag.Ref{Array: "big", Block: 0, Bytes: 100}
	c.Use(big)
	if !c.Resident(big) {
		t.Fatal("sole oversized entry evicted")
	}
}

func TestOrderIsStableAndComplete(t *testing.T) {
	p := NewPolicy()
	p.Touch([]dag.Ref{{Array: "m2", Block: 0, Bytes: 1}})
	ready := []*dag.Task{
		mkTask("t1", "m1"),
		mkTask("t2", "m2"), // most recent -> first among non-resident
		mkTask("t3", "m3"),
		mkTask("t4", "m4"),
	}
	resident := func(r dag.Ref) bool { return r.Array == "m3" }
	got := p.Order(ready, resident)
	if len(got) != len(ready) {
		t.Fatalf("Order returned %d of %d tasks", len(got), len(ready))
	}
	if got[0].ID != "t3" {
		t.Fatalf("first = %s, want resident t3", got[0].ID)
	}
	if got[1].ID != "t2" {
		t.Fatalf("second = %s, want MRU t2", got[1].ID)
	}
	// Remaining two keep insertion order (stable sort).
	if got[2].ID != "t1" || got[3].ID != "t4" {
		t.Fatalf("tail = %s,%s, want t1,t4", got[2].ID, got[3].ID)
	}
	// Order must agree with Pick on the head.
	if pick := p.Pick(ready, resident); pick.ID != got[0].ID {
		t.Fatalf("Pick %s != Order head %s", pick.ID, got[0].ID)
	}
	// FIFO mode preserves input order entirely.
	p.Reorder = false
	fifo := p.Order(ready, resident)
	for i := range ready {
		if fifo[i].ID != ready[i].ID {
			t.Fatalf("FIFO order changed position %d", i)
		}
	}
}

func TestPrefetchTargetsFollowOrder(t *testing.T) {
	p := NewPolicy()
	p.Touch([]dag.Ref{{Array: "b", Block: 0, Bytes: 1}})
	ready := []*dag.Task{mkTask("ta", "a"), mkTask("tb", "b"), mkTask("tc", "c")}
	got := p.PrefetchTargets(ready, func(dag.Ref) bool { return false }, 3)
	if len(got) != 3 {
		t.Fatalf("targets = %d", len(got))
	}
	// The MRU task's datum leads the prefetch queue.
	if got[0].Array != "b" {
		t.Fatalf("first prefetch = %s, want b", got[0].Array)
	}
}
