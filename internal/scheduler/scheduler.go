// Package scheduler implements DOoC's hierarchical data-aware task
// scheduler (Section III-C of the paper).
//
// The *global* scheduler distributes tasks across nodes with an affinity
// heuristic: "Tasks are sent to the compute nodes which host most of the
// data required to process them."
//
// The *local* scheduler reorders each node's ready tasks to minimize
// expensive data loads. The policy here scores ready tasks by (1) how many
// heavy input bytes are already resident, then (2) how recently their heavy
// inputs were used (most-recent first). On an iterated SpMV this MRU-first
// rule reproduces the paper's Fig. 5(b) "back and forth" traversal exactly:
// each iteration walks the sub-matrices in the reverse order of the
// previous one, saving the boundary load.
package scheduler

import (
	"sort"

	"dooc/internal/dag"
	"dooc/internal/obs"
)

// Affinity assigns each task to the node hosting the most input bytes.
// locate reports where a datum currently lives (ok=false if nowhere yet).
// Ties and unlocatable tasks go to the least-loaded node (by assigned input
// bytes), which doubles as round-robin on empty state.
func Affinity(tasks []*dag.Task, nodes int, locate func(dag.Ref) (int, bool)) map[string]int {
	assign := make(map[string]int, len(tasks))
	load := make([]int64, nodes)
	for _, t := range tasks {
		byNode := make([]int64, nodes)
		var located bool
		for _, in := range t.Inputs {
			if n, ok := locate(in); ok && n >= 0 && n < nodes {
				byNode[n] += in.Bytes
				located = true
			}
		}
		best := -1
		if located {
			for n, b := range byNode {
				if b == 0 {
					continue
				}
				if best == -1 || b > byNode[best] || (b == byNode[best] && load[n] < load[best]) {
					best = n
				}
			}
		}
		if best == -1 {
			// Least-loaded placement for data-free tasks.
			best = 0
			for n := 1; n < nodes; n++ {
				if load[n] < load[best] {
					best = n
				}
			}
		}
		assign[t.ID] = best
		var bytes int64
		for _, in := range t.Inputs {
			bytes += in.Bytes
		}
		if bytes < 1 {
			bytes = 1 // data-free tasks still occupy a node
		}
		load[best] += bytes
	}
	return assign
}

// RoundRobin is the affinity-free baseline placement used by the ablation
// benchmarks.
func RoundRobin(tasks []*dag.Task, nodes int) map[string]int {
	assign := make(map[string]int, len(tasks))
	for i, t := range tasks {
		assign[t.ID] = i % nodes
	}
	return assign
}

// Policy is one node's local-scheduler task selection state.
type Policy struct {
	lastUse map[string]int64
	tick    int64
	// Reorder enables the data-aware reordering; false degrades to FIFO
	// (the ablation baseline).
	Reorder bool
	// Optional observability hooks (nil counters are no-ops):
	// Picks counts Pick decisions, Reorders the picks where the data-aware
	// score overrode FIFO order, PrefetchRefs the data refs handed to the
	// prefetcher.
	Picks        *obs.Counter
	Reorders     *obs.Counter
	PrefetchRefs *obs.Counter
}

// NewPolicy returns a reordering policy.
func NewPolicy() *Policy {
	return &Policy{lastUse: make(map[string]int64), Reorder: true}
}

// Touch records that the given data were just used (called when a task's
// inputs are consumed).
func (p *Policy) Touch(refs []dag.Ref) {
	p.tick++
	for _, r := range refs {
		p.lastUse[r.Key()] = p.tick
	}
}

// score summarizes a task's desirability: tasks with no heavy inputs run
// eagerly (the paper: reductions "can be performed as soon as intermediate
// results become available" — delaying them would stall successors); then
// resident heavy bytes; then recency of heavy inputs (MRU-first).
type score struct {
	eager         bool
	residentBytes int64
	recency       int64
	pos           int
}

func (p *Policy) scoreOf(t *dag.Task, pos int, resident func(dag.Ref) bool) score {
	s := score{pos: pos}
	heavy := t.HeavyInputs()
	if len(heavy) == 0 {
		s.eager = true
		return s
	}
	for _, r := range heavy {
		if resident(r) {
			s.residentBytes += r.Bytes
		}
		if lu := p.lastUse[r.Key()]; lu > s.recency {
			s.recency = lu
		}
	}
	return s
}

func better(a, b score) bool {
	if a.eager != b.eager {
		return a.eager
	}
	if a.residentBytes != b.residentBytes {
		return a.residentBytes > b.residentBytes
	}
	if a.recency != b.recency {
		return a.recency > b.recency
	}
	return a.pos < b.pos
}

// Pick selects the next task to run from the node's ready tasks. resident
// reports whether a datum is in this node's memory (typically a closure over
// the storage layer's residency map). Returns nil when ready is empty.
func (p *Policy) Pick(ready []*dag.Task, resident func(dag.Ref) bool) *dag.Task {
	if len(ready) == 0 {
		return nil
	}
	p.Picks.Inc()
	if !p.Reorder {
		return ready[0]
	}
	best := 0
	bestScore := p.scoreOf(ready[0], 0, resident)
	for i := 1; i < len(ready); i++ {
		if s := p.scoreOf(ready[i], i, resident); better(s, bestScore) {
			best, bestScore = i, s
		}
	}
	if best != 0 {
		p.Reorders.Inc()
	}
	return ready[best]
}

// Order returns the ready tasks sorted by descending desirability; the
// prefix of this order is what the prefetcher warms.
func (p *Policy) Order(ready []*dag.Task, resident func(dag.Ref) bool) []*dag.Task {
	out := append([]*dag.Task(nil), ready...)
	if !p.Reorder {
		return out
	}
	scores := make([]score, len(out))
	for i, t := range out {
		scores[i] = p.scoreOf(t, i, resident)
	}
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return better(scores[idx[a]], scores[idx[b]]) })
	sorted := make([]*dag.Task, len(out))
	for i, j := range idx {
		sorted[i] = out[j]
	}
	return sorted
}

// PrefetchTargets returns up to `window` heavy, non-resident data refs from
// the most desirable ready tasks, in the order the prefetcher should issue
// them. This is how the local scheduler keeps "a given number of ready
// tasks whose data are in memory".
func (p *Policy) PrefetchTargets(ready []*dag.Task, resident func(dag.Ref) bool, window int) []dag.Ref {
	if window <= 0 {
		return nil
	}
	var out []dag.Ref
	seen := make(map[string]bool)
	for _, t := range p.Order(ready, resident) {
		for _, r := range t.HeavyInputs() {
			if resident(r) || seen[r.Key()] {
				continue
			}
			seen[r.Key()] = true
			out = append(out, r)
			if len(out) == window {
				p.PrefetchRefs.Add(int64(len(out)))
				return out
			}
		}
	}
	p.PrefetchRefs.Add(int64(len(out)))
	return out
}
