// Package scheduler implements DOoC's hierarchical data-aware task
// scheduler (Section III-C of the paper).
//
// The *global* scheduler distributes tasks across nodes with an affinity
// heuristic: "Tasks are sent to the compute nodes which host most of the
// data required to process them."
//
// The *local* scheduler reorders each node's ready tasks to minimize
// expensive data loads. The policy here scores ready tasks by (1) how many
// heavy input bytes are already resident, then (2) how recently their heavy
// inputs were used (most-recent first). On an iterated SpMV this MRU-first
// rule reproduces the paper's Fig. 5(b) "back and forth" traversal exactly:
// each iteration walks the sub-matrices in the reverse order of the
// previous one, saving the boundary load.
package scheduler

import (
	"sort"

	"dooc/internal/dag"
	"dooc/internal/obs"
)

// Affinity assigns each task to the node hosting the most input bytes.
// locate reports where a datum currently lives (ok=false if nowhere yet).
// Ties and unlocatable tasks go to the least-loaded node (by assigned input
// bytes), which doubles as round-robin on empty state.
func Affinity(tasks []*dag.Task, nodes int, locate func(dag.Ref) (int, bool)) map[string]int {
	assign := make(map[string]int, len(tasks))
	load := make([]int64, nodes)
	byNode := make([]int64, nodes)
	for _, t := range tasks {
		clear(byNode)
		var located bool
		for _, in := range t.Inputs {
			if n, ok := locate(in); ok && n >= 0 && n < nodes {
				byNode[n] += in.Bytes
				located = true
			}
		}
		best := -1
		if located {
			for n, b := range byNode {
				if b == 0 {
					continue
				}
				if best == -1 || b > byNode[best] || (b == byNode[best] && load[n] < load[best]) {
					best = n
				}
			}
		}
		if best == -1 {
			// Least-loaded placement for data-free tasks.
			best = 0
			for n := 1; n < nodes; n++ {
				if load[n] < load[best] {
					best = n
				}
			}
		}
		assign[t.ID] = best
		var bytes int64
		for _, in := range t.Inputs {
			bytes += in.Bytes
		}
		if bytes < 1 {
			bytes = 1 // data-free tasks still occupy a node
		}
		load[best] += bytes
	}
	return assign
}

// RoundRobin is the affinity-free baseline placement used by the ablation
// benchmarks.
func RoundRobin(tasks []*dag.Task, nodes int) map[string]int {
	assign := make(map[string]int, len(tasks))
	for i, t := range tasks {
		assign[t.ID] = i % nodes
	}
	return assign
}

// refKey identifies a datum like dag.Ref.Key() but as a comparable struct,
// so the policy's maps never build key strings on the pick path.
type refKey struct {
	array       string
	block, part int
}

func keyOf(r dag.Ref) refKey { return refKey{r.Array, r.Block, r.Part} }

// Policy is one node's local-scheduler task selection state. A Policy is not
// safe for concurrent use; the engine serializes all calls per node.
type Policy struct {
	lastUse map[refKey]int64
	tick    int64

	// Reusable pick-path scratch (Order, PrefetchTargets).
	ordScratch   []*dag.Task
	tmpScratch   []*dag.Task
	scoreScratch []score
	idxScratch   []int
	seenScratch  map[refKey]bool
	refScratch   []dag.Ref
	sorter       orderSorter
	// Reorder enables the data-aware reordering; false degrades to FIFO
	// (the ablation baseline).
	Reorder bool
	// Optional observability hooks (nil counters are no-ops):
	// Picks counts Pick decisions, Reorders the picks where the data-aware
	// score overrode FIFO order, PrefetchRefs the data refs handed to the
	// prefetcher.
	Picks        *obs.Counter
	Reorders     *obs.Counter
	PrefetchRefs *obs.Counter
	// Decoded, when non-nil, reports arrays already materialized past the
	// storage tier (e.g. the engine's decoded-block cache). PrefetchTargets
	// skips them: a block the compute stage can consume directly must not
	// burn a prefetch-window slot, which hands the slot to the next block
	// the decode pipeline actually needs.
	Decoded func(array string) bool
}

// NewPolicy returns a reordering policy.
func NewPolicy() *Policy {
	return &Policy{lastUse: make(map[refKey]int64), Reorder: true}
}

// Touch records that the given data were just used (called when a task's
// inputs are consumed).
func (p *Policy) Touch(refs []dag.Ref) {
	p.tick++
	for _, r := range refs {
		p.lastUse[keyOf(r)] = p.tick
	}
}

// score summarizes a task's desirability: tasks with no heavy inputs run
// eagerly (the paper: reductions "can be performed as soon as intermediate
// results become available" — delaying them would stall successors); then
// resident heavy bytes; then recency of heavy inputs (MRU-first).
type score struct {
	eager         bool
	residentBytes int64
	recency       int64
	pos           int
}

func (p *Policy) scoreOf(t *dag.Task, pos int, resident func(dag.Ref) bool) score {
	s := score{pos: pos}
	heavy := t.HeavyInputs()
	if len(heavy) == 0 {
		s.eager = true
		return s
	}
	for _, r := range heavy {
		if resident(r) {
			s.residentBytes += r.Bytes
		}
		if lu := p.lastUse[keyOf(r)]; lu > s.recency {
			s.recency = lu
		}
	}
	return s
}

// orderSorter stably sorts an index permutation by score without the
// reflection-based swapper sort.SliceStable allocates per call.
type orderSorter struct {
	idx    []int
	scores []score
}

func (o *orderSorter) Len() int      { return len(o.idx) }
func (o *orderSorter) Swap(i, j int) { o.idx[i], o.idx[j] = o.idx[j], o.idx[i] }
func (o *orderSorter) Less(i, j int) bool {
	return better(o.scores[o.idx[i]], o.scores[o.idx[j]])
}

func better(a, b score) bool {
	if a.eager != b.eager {
		return a.eager
	}
	if a.residentBytes != b.residentBytes {
		return a.residentBytes > b.residentBytes
	}
	if a.recency != b.recency {
		return a.recency > b.recency
	}
	return a.pos < b.pos
}

// Pick selects the next task to run from the node's ready tasks. resident
// reports whether a datum is in this node's memory (typically a closure over
// the storage layer's residency map). Returns nil when ready is empty.
func (p *Policy) Pick(ready []*dag.Task, resident func(dag.Ref) bool) *dag.Task {
	if len(ready) == 0 {
		return nil
	}
	p.Picks.Inc()
	if !p.Reorder {
		return ready[0]
	}
	best := 0
	bestScore := p.scoreOf(ready[0], 0, resident)
	for i := 1; i < len(ready); i++ {
		if s := p.scoreOf(ready[i], i, resident); better(s, bestScore) {
			best, bestScore = i, s
		}
	}
	if best != 0 {
		p.Reorders.Inc()
	}
	return ready[best]
}

// Order returns the ready tasks sorted by descending desirability; the
// prefix of this order is what the prefetcher warms. The returned slice is
// scratch owned by the policy — valid until the next Order or
// PrefetchTargets call.
func (p *Policy) Order(ready []*dag.Task, resident func(dag.Ref) bool) []*dag.Task {
	out := append(p.ordScratch[:0], ready...)
	p.ordScratch = out[:0]
	if !p.Reorder {
		return out
	}
	scores := p.scoreScratch[:0]
	idx := p.idxScratch[:0]
	for i, t := range out {
		scores = append(scores, p.scoreOf(t, i, resident))
		idx = append(idx, i)
	}
	p.scoreScratch, p.idxScratch = scores[:0], idx[:0]
	p.sorter.idx, p.sorter.scores = idx, scores
	sort.Stable(&p.sorter)
	p.sorter.idx, p.sorter.scores = nil, nil
	// Apply the permutation through a second scratch buffer (out aliases
	// ordScratch, so the copy must not share its backing array).
	tmp := append(p.tmpScratch[:0], out...)
	p.tmpScratch = tmp[:0]
	for i, j := range idx {
		out[i] = tmp[j]
	}
	return out
}

// PrefetchTargets returns up to `window` heavy, non-resident data refs from
// the most desirable ready tasks, in the order the prefetcher should issue
// them. This is how the local scheduler keeps "a given number of ready
// tasks whose data are in memory". The returned slice is scratch owned by
// the policy — valid until the next PrefetchTargets call.
func (p *Policy) PrefetchTargets(ready []*dag.Task, resident func(dag.Ref) bool, window int) []dag.Ref {
	if window <= 0 {
		return nil
	}
	out := p.refScratch[:0]
	if p.seenScratch == nil {
		p.seenScratch = make(map[refKey]bool, 8)
	}
	seen := p.seenScratch
	clear(seen)
	for _, t := range p.Order(ready, resident) {
		for _, r := range t.HeavyInputs() {
			if resident(r) || seen[keyOf(r)] {
				continue
			}
			if p.Decoded != nil && p.Decoded(r.Array) {
				continue
			}
			seen[keyOf(r)] = true
			out = append(out, r)
			if len(out) == window {
				p.refScratch = out[:0]
				p.PrefetchRefs.Add(int64(len(out)))
				return out
			}
		}
	}
	p.refScratch = out[:0]
	p.PrefetchRefs.Add(int64(len(out)))
	return out
}
