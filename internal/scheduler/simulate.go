package scheduler

import (
	"fmt"
	"sort"

	"dooc/internal/dag"
)

// SimCache models one node's block cache for plan simulation: LRU over
// heavy data refs with a byte capacity, counting loads.
type SimCache struct {
	capacity int64
	used     int64
	resident map[string]int64
	lastUse  map[string]int64
	tick     int64

	Loads       int
	LoadedBytes int64
}

// NewSimCache returns a cache with the given byte capacity.
func NewSimCache(capacity int64) *SimCache {
	return &SimCache{
		capacity: capacity,
		resident: make(map[string]int64),
		lastUse:  make(map[string]int64),
	}
}

// Resident reports whether ref is cached.
func (c *SimCache) Resident(r dag.Ref) bool {
	_, ok := c.resident[r.Key()]
	return ok
}

// Use touches ref, loading (and LRU-evicting) as needed. It reports whether
// a load was required.
func (c *SimCache) Use(r dag.Ref) bool {
	c.tick++
	k := r.Key()
	if _, ok := c.resident[k]; ok {
		c.lastUse[k] = c.tick
		return false
	}
	c.Loads++
	c.LoadedBytes += r.Bytes
	c.resident[k] = r.Bytes
	c.lastUse[k] = c.tick
	c.used += r.Bytes
	for c.used > c.capacity && len(c.resident) > 1 {
		// Evict the least recently used entry other than k.
		victim := ""
		var vt int64
		for key := range c.resident {
			if key == k {
				continue
			}
			if victim == "" || c.lastUse[key] < vt || (c.lastUse[key] == vt && key < victim) {
				victim, vt = key, c.lastUse[key]
			}
		}
		if victim == "" {
			break
		}
		c.used -= c.resident[victim]
		delete(c.resident, victim)
		delete(c.lastUse, victim)
	}
	return true
}

// OpKind labels simulated schedule events.
type OpKind int

const (
	// OpLoad is an expensive data load (a matrix block from storage).
	OpLoad OpKind = iota
	// OpRun is the task's execution.
	OpRun
)

func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpRun:
		return "run"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one simulated schedule event.
type Op struct {
	Node  int
	Kind  OpKind
	Task  string  // task ID (for OpRun) or the loading task's ID (OpLoad)
	Ref   dag.Ref // datum loaded (OpLoad only)
	Start float64
	End   float64
}

// Costs parameterizes simulated durations. Zero values are legal: ordering
// and load counting still work, only the time axis degenerates.
type Costs struct {
	// LoadSecondsPerByte converts a heavy ref's bytes to load seconds.
	LoadSecondsPerByte float64
	// RunSeconds returns a task's execution duration.
	RunSeconds func(t *dag.Task) float64
}

// Plan is the result of simulating a schedule.
type Plan struct {
	Ops []Op
	// LoadsPerNode counts expensive loads by node.
	LoadsPerNode []int
	// LoadsPerIterPerNode[iter][node], populated when tasks carry an
	// iteration convention in their Kind metadata via IterOf.
	Makespan float64
	// TaskFinish records each task's completion time.
	TaskFinish map[string]float64
}

// NodeOps returns the ops of one node in time order.
func (p *Plan) NodeOps(node int) []Op {
	var out []Op
	for _, op := range p.Ops {
		if op.Node == node {
			out = append(out, op)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// TotalLoads sums loads across nodes.
func (p *Plan) TotalLoads() int {
	n := 0
	for _, l := range p.LoadsPerNode {
		n += l
	}
	return n
}

// Simulate list-schedules the DAG over `nodes` single-worker nodes with
// per-node caches of cacheBytes, using the local policy's data-aware
// reordering (or FIFO when reorder is false). assign maps every task to its
// node (from Affinity or RoundRobin). The returned plan records the exact
// op sequence — this is what the Fig. 5 Gantt charts and the load-count
// ablations are generated from.
func Simulate(g *dag.Graph, assign map[string]int, nodes int, cacheBytes int64, reorder bool, costs Costs) (*Plan, error) {
	for _, t := range g.Tasks() {
		n, ok := assign[t.ID]
		if !ok || n < 0 || n >= nodes {
			return nil, fmt.Errorf("scheduler: task %q has no valid assignment (got %d over %d nodes)", t.ID, n, nodes)
		}
	}
	caches := make([]*SimCache, nodes)
	policies := make([]*Policy, nodes)
	cursors := make([]float64, nodes)
	for i := range caches {
		caches[i] = NewSimCache(cacheBytes)
		p := NewPolicy()
		p.Reorder = reorder
		policies[i] = p
	}
	plan := &Plan{LoadsPerNode: make([]int, nodes), TaskFinish: make(map[string]float64)}

	runSeconds := costs.RunSeconds
	if runSeconds == nil {
		runSeconds = func(*dag.Task) float64 { return 1 }
	}

	for !g.Done() {
		ready := g.Ready()
		if len(ready) == 0 {
			return nil, fmt.Errorf("scheduler: no ready tasks but DAG incomplete")
		}
		// Group ready tasks by node; each node's policy nominates one.
		byNode := make(map[int][]*dag.Task)
		for _, id := range ready {
			t := g.Task(id)
			byNode[assign[id]] = append(byNode[assign[id]], t)
		}
		// Among nominating nodes, run the one that can start earliest.
		bestNode, bestStart := -1, 0.0
		var bestTask *dag.Task
		for n := 0; n < nodes; n++ {
			cand := policies[n].Pick(byNode[n], caches[n].Resident)
			if cand == nil {
				continue
			}
			start := cursors[n]
			for _, p := range g.Preds(cand.ID) {
				if f := plan.TaskFinish[p]; f > start {
					start = f
				}
			}
			if bestNode == -1 || start < bestStart || (start == bestStart && n < bestNode) {
				bestNode, bestStart, bestTask = n, start, cand
			}
		}
		if bestNode == -1 {
			return nil, fmt.Errorf("scheduler: ready tasks exist but none nominated")
		}
		n, t := bestNode, bestTask
		now := bestStart
		// Load missing heavy inputs.
		for _, r := range t.HeavyInputs() {
			if caches[n].Use(r) {
				d := float64(r.Bytes) * costs.LoadSecondsPerByte
				plan.Ops = append(plan.Ops, Op{Node: n, Kind: OpLoad, Task: t.ID, Ref: r, Start: now, End: now + d})
				plan.LoadsPerNode[n]++
				now += d
			}
		}
		d := runSeconds(t)
		plan.Ops = append(plan.Ops, Op{Node: n, Kind: OpRun, Task: t.ID, Start: now, End: now + d})
		now += d
		cursors[n] = now
		plan.TaskFinish[t.ID] = now
		policies[n].Touch(t.HeavyInputs())
		if now > plan.Makespan {
			plan.Makespan = now
		}
		g.Start(t.ID)
		g.Complete(t.ID)
	}
	return plan, nil
}
