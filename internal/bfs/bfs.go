// Package bfs implements out-of-core breadth-first search over a blocked
// adjacency matrix — the graph-traversal workload of the paper's Section VI
// discussion ("SSD-accelerated supercomputers are being investigated to
// improve the efficiency of the graph traversal problem", citing the
// Graph500 Leviathan result: a single SSD-equipped node matching a
// 6128-core in-memory cluster).
//
// The adjacency matrix is partitioned into the same K×K block grid as the
// SpMV workload and staged as CRS files; each BFS level is one DOoC task
// program: K*K "expand" tasks (pattern-SpMV over the frontier bitset) and K
// "merge" tasks (OR partials, mask visited). Frontier and visited sets are
// immutable versioned arrays, exactly like the solver's iterates. Edges are
// generated with the Graph500 R-MAT recipe.
package bfs

import (
	"fmt"
	"math/rand"

	"dooc/internal/sparse"
)

// RMATConfig parameterizes the Graph500 Kronecker/R-MAT edge generator.
type RMATConfig struct {
	// Scale gives 2^Scale vertices.
	Scale int
	// EdgeFactor is edges per vertex (Graph500 uses 16).
	EdgeFactor int
	// A, B, C are the quadrant probabilities (D = 1-A-B-C);
	// Graph500 uses 0.57, 0.19, 0.19.
	A, B, C float64
	Seed    int64
}

// Graph500Defaults returns the standard R-MAT parameters at a given scale.
func Graph500Defaults(scale int) RMATConfig {
	return RMATConfig{Scale: scale, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19, Seed: 1}
}

// RMAT generates an undirected graph as a symmetric pattern matrix
// (values 1). Self-loops are dropped; duplicate edges collapse.
func RMAT(cfg RMATConfig) (*sparse.CSR, error) {
	if cfg.Scale < 1 || cfg.Scale > 24 {
		return nil, fmt.Errorf("bfs: scale %d out of [1,24]", cfg.Scale)
	}
	if cfg.EdgeFactor < 1 {
		return nil, fmt.Errorf("bfs: edge factor %d", cfg.EdgeFactor)
	}
	d := 1 - cfg.A - cfg.B - cfg.C
	if cfg.A <= 0 || cfg.B <= 0 || cfg.C <= 0 || d <= 0 {
		return nil, fmt.Errorf("bfs: quadrant probabilities must be positive and sum < 1")
	}
	n := 1 << cfg.Scale
	rng := rand.New(rand.NewSource(cfg.Seed))
	edges := n * cfg.EdgeFactor
	var ts []sparse.Triplet
	for e := 0; e < edges; e++ {
		i, j := 0, 0
		for bit := cfg.Scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// top-left: nothing set
			case r < cfg.A+cfg.B:
				j |= 1 << bit
			case r < cfg.A+cfg.B+cfg.C:
				i |= 1 << bit
			default:
				i |= 1 << bit
				j |= 1 << bit
			}
		}
		if i == j {
			continue
		}
		ts = append(ts, sparse.Triplet{Row: i, Col: j, Val: 1}, sparse.Triplet{Row: j, Col: i, Val: 1})
	}
	m, err := sparse.FromTriplets(n, n, ts)
	if err != nil {
		return nil, err
	}
	// Collapse duplicate-edge sums back to pattern 1s.
	for k := range m.Val {
		m.Val[k] = 1
	}
	return m, nil
}

// Unreached marks vertices not reachable from the source.
const Unreached = int32(-1)

// Reference computes BFS distances in-core (the test oracle).
func Reference(adj *sparse.CSR, source int) ([]int32, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("bfs: adjacency must be square")
	}
	if source < 0 || source >= adj.Rows {
		return nil, fmt.Errorf("bfs: source %d out of %d", source, adj.Rows)
	}
	dist := make([]int32, adj.Rows)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[source] = 0
	queue := []int32{int32(source)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for k := adj.RowPtr[v]; k < adj.RowPtr[v+1]; k++ {
			w := adj.ColIdx[k]
			if dist[w] == Unreached {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist, nil
}

// Bitset helpers (bitsets are the frontier/visited currency of the
// out-of-core driver).

// BitsetBytes returns the byte length of an n-bit set.
func BitsetBytes(n int) int { return (n + 7) / 8 }

// SetBit sets bit i.
func SetBit(b []byte, i int) { b[i/8] |= 1 << (i % 8) }

// GetBit reports bit i.
func GetBit(b []byte, i int) bool { return b[i/8]&(1<<(i%8)) != 0 }

// OrInto ORs src into dst.
func OrInto(dst, src []byte) {
	for i := range src {
		dst[i] |= src[i]
	}
}

// AndNot clears from dst every bit set in mask.
func AndNot(dst, mask []byte) {
	for i := range mask {
		dst[i] &^= mask[i]
	}
}

// PopCount counts set bits.
func PopCount(b []byte) int {
	n := 0
	for _, v := range b {
		for v != 0 {
			n += int(v & 1)
			v >>= 1
		}
	}
	return n
}
