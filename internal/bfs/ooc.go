package bfs

import (
	"bytes"
	"fmt"

	"dooc/internal/core"
	"dooc/internal/dag"
	"dooc/internal/sparse"
	"dooc/internal/spmv"
	"dooc/internal/storage"
)

// Driver runs breadth-first search out-of-core over a staged adjacency
// matrix: each level is one DOoC task program whose dependencies are
// derived from frontier/visited array versions.
type Driver struct {
	Sys *core.System
	// Cfg describes the staged adjacency blocks (Dim, K, Nodes; Iters is
	// ignored). Tag namespaces this traversal's arrays.
	Cfg core.SpMVConfig
}

// levelArrays returns the array names of one BFS level.
func (d *Driver) frontier(level, u int) string {
	return fmt.Sprintf("%s:bfs:f_%d_%d", d.Cfg.Tag, level, u)
}
func (d *Driver) partial(level, u, v int) string {
	return fmt.Sprintf("%s:bfs:fp_%d_%d_%d", d.Cfg.Tag, level, u, v)
}
func (d *Driver) visited(level, u int) string {
	return fmt.Sprintf("%s:bfs:vis_%d_%d", d.Cfg.Tag, level, u)
}

// Run traverses from source and returns per-vertex distances.
func (d *Driver) Run(source int) ([]int32, error) {
	cfg := d.Cfg
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Tag == "" {
		cfg.Tag = "bfs"
		d.Cfg.Tag = "bfs"
	}
	if source < 0 || source >= cfg.Dim {
		return nil, fmt.Errorf("bfs: source %d out of %d", source, cfg.Dim)
	}
	p, err := cfg.Partition()
	if err != nil {
		return nil, err
	}
	dist := make([]int32, cfg.Dim)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[source] = 0

	// Seed level 0: frontier = {source}; visited = frontier.
	for u := 0; u < cfg.K; u++ {
		bits := make([]byte, BitsetBytes(p.Size(u)))
		if pu := p.PartOf(source); pu == u {
			SetBit(bits, source-p.Start(u))
		}
		owner := d.Sys.Store(cfg.OwnerOf(u))
		if err := owner.WriteArray(d.frontier(0, u), bits, 0); err != nil {
			return nil, err
		}
		if err := owner.WriteArray(d.visited(0, u), bits, 0); err != nil {
			return nil, err
		}
	}

	for level := 1; level <= cfg.Dim; level++ {
		grew, err := d.level(level, p)
		if err != nil {
			return nil, err
		}
		if !grew {
			break
		}
		// Record distances from the new frontier.
		for u := 0; u < cfg.K; u++ {
			raw, err := d.Sys.Store(cfg.OwnerOf(u)).ReadAll(d.frontier(level, u))
			if err != nil {
				return nil, err
			}
			base := p.Start(u)
			for i := 0; i < p.Size(u); i++ {
				if GetBit(raw, i) {
					dist[base+i] = int32(level)
				}
			}
		}
	}
	return dist, nil
}

// level executes one BFS level program; reports whether the new frontier is
// non-empty.
func (d *Driver) level(level int, p sparse.GridPartition) (bool, error) {
	cfg := d.Cfg
	// Create this level's arrays.
	ephemeral := map[string]bool{}
	for u := 0; u < cfg.K; u++ {
		owner := d.Sys.Store(cfg.OwnerOf(u))
		fbytes := int64(BitsetBytes(p.Size(u)))
		for _, name := range []string{d.frontier(level, u), d.visited(level, u)} {
			if err := owner.Create(name, fbytes, fbytes); err != nil {
				return false, err
			}
		}
		for v := 0; v < cfg.K; v++ {
			name := d.partial(level, u, v)
			if err := owner.Create(name, fbytes, fbytes); err != nil {
				return false, err
			}
			ephemeral[name] = true
		}
		// Previous-level frontier and visited die after this level.
		ephemeral[d.frontier(level-1, u)] = true
		ephemeral[d.visited(level-1, u)] = true
	}

	var tasks []*dag.Task
	for u := 0; u < cfg.K; u++ {
		for v := 0; v < cfg.K; v++ {
			tasks = append(tasks, &dag.Task{
				ID:   fmt.Sprintf("expand:%d:%d:%d", level, u, v),
				Kind: "bfs-expand",
				Inputs: []dag.Ref{
					{Array: spmv.MatrixArray(u, v), Bytes: 1 << 20},
					{Array: d.frontier(level-1, v), Bytes: 64},
				},
				Outputs: []dag.Ref{{Array: d.partial(level, u, v), Bytes: 64}},
				Heavy:   []dag.Ref{{Array: spmv.MatrixArray(u, v), Bytes: 1 << 20}},
			})
		}
		in := []dag.Ref{{Array: d.visited(level-1, u), Bytes: 64}}
		for v := 0; v < cfg.K; v++ {
			in = append(in, dag.Ref{Array: d.partial(level, u, v), Bytes: 64})
		}
		tasks = append(tasks, &dag.Task{
			ID:     fmt.Sprintf("merge:%d:%d", level, u),
			Kind:   "bfs-merge",
			Inputs: in,
			Outputs: []dag.Ref{
				{Array: d.frontier(level, u), Bytes: 64},
				{Array: d.visited(level, u), Bytes: 64},
			},
			Heavy: []dag.Ref{},
		})
	}
	locate := func(r dag.Ref) (int, bool) {
		var u int
		if n, _ := fmt.Sscanf(r.Array, "A_%d_", &u); n == 1 {
			return cfg.OwnerOf(u), true
		}
		// Frontier/partial/visited arrays live with their row owner.
		var lvl int
		rest := r.Array
		if i := len(cfg.Tag + ":bfs:"); len(rest) > i {
			rest = rest[i:]
		}
		if n, _ := fmt.Sscanf(rest, "fp_%d_%d_", &lvl, &u); n == 2 {
			return cfg.OwnerOf(u), true
		}
		if n, _ := fmt.Sscanf(rest, "f_%d_%d", &lvl, &u); n == 2 {
			return cfg.OwnerOf(u), true
		}
		if n, _ := fmt.Sscanf(rest, "vis_%d_%d", &lvl, &u); n == 2 {
			return cfg.OwnerOf(u), true
		}
		return 0, false
	}
	if _, err := d.Sys.Run(core.RunSpec{
		Tasks:     tasks,
		Executors: d.executors(),
		Locate:    locate,
		Ephemeral: ephemeral,
	}); err != nil {
		return false, err
	}
	// Non-empty frontier?
	for u := 0; u < cfg.K; u++ {
		raw, err := d.Sys.Store(cfg.OwnerOf(u)).ReadAll(d.frontier(level, u))
		if err != nil {
			return false, err
		}
		if PopCount(raw) > 0 {
			return true, nil
		}
	}
	return false, nil
}

// executors returns the BFS computing filters.
func (d *Driver) executors() map[string]core.Executor {
	return map[string]core.Executor{
		"bfs-expand": func(ctx *core.ExecContext) error {
			t := ctx.Task
			aRef, fRef, outRef := t.Inputs[0], t.Inputs[1], t.Outputs[0]
			aLease, err := ctx.Store.RequestBlock(aRef.Array, 0, storage.PermRead)
			if err != nil {
				return err
			}
			adj, err := sparse.ReadCRS(bytes.NewReader(aLease.Data))
			aLease.Release()
			if err != nil {
				return err
			}
			fLease, err := ctx.Store.RequestBlock(fRef.Array, 0, storage.PermRead)
			if err != nil {
				return err
			}
			frontier := append([]byte(nil), fLease.Data...)
			fLease.Release()
			next := make([]byte, BitsetBytes(adj.Rows))
			for i := 0; i < adj.Rows; i++ {
				for k := adj.RowPtr[i]; k < adj.RowPtr[i+1]; k++ {
					if GetBit(frontier, int(adj.ColIdx[k])) {
						SetBit(next, i)
						break
					}
				}
			}
			out, err := ctx.Store.RequestBlock(outRef.Array, 0, storage.PermWrite)
			if err != nil {
				return err
			}
			copy(out.Data, next)
			out.Release()
			return nil
		},
		"bfs-merge": func(ctx *core.ExecContext) error {
			t := ctx.Task
			visLease, err := ctx.Store.RequestBlock(t.Inputs[0].Array, 0, storage.PermRead)
			if err != nil {
				return err
			}
			visited := append([]byte(nil), visLease.Data...)
			visLease.Release()
			next := make([]byte, len(visited))
			for _, in := range t.Inputs[1:] {
				l, err := ctx.Store.RequestBlock(in.Array, 0, storage.PermRead)
				if err != nil {
					return err
				}
				OrInto(next, l.Data)
				l.Release()
			}
			AndNot(next, visited)
			newVis := append([]byte(nil), visited...)
			OrInto(newVis, next)
			for i, ref := range t.Outputs {
				l, err := ctx.Store.RequestBlock(ref.Array, 0, storage.PermWrite)
				if err != nil {
					return err
				}
				if i == 0 {
					copy(l.Data, next)
				} else {
					copy(l.Data, newVis)
				}
				l.Release()
			}
			return nil
		},
	}
}
