package bfs

import (
	"testing"

	"dooc/internal/core"
	"dooc/internal/sparse"
)

func TestRMATProperties(t *testing.T) {
	cfg := Graph500Defaults(8)
	g, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != 256 {
		t.Fatalf("rows = %d", g.Rows)
	}
	if !g.IsSymmetric(0) {
		t.Fatal("undirected graph must be symmetric")
	}
	for i := 0; i < g.Rows; i++ {
		if g.At(i, i) != 0 {
			t.Fatalf("self-loop at %d", i)
		}
	}
	for _, v := range g.Val {
		if v != 1 {
			t.Fatalf("pattern value %v", v)
		}
	}
	// Determinism.
	g2, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NNZ() != g.NNZ() {
		t.Fatal("same seed, different graph")
	}
	// R-MAT skew: max degree far above average.
	st := sparse.Summarize(g)
	if float64(st.MaxPerRow) < 3*st.AvgPerRow {
		t.Errorf("degree distribution not skewed: max %d avg %.1f", st.MaxPerRow, st.AvgPerRow)
	}
}

func TestRMATValidation(t *testing.T) {
	if _, err := RMAT(RMATConfig{Scale: 0, EdgeFactor: 1, A: 0.5, B: 0.2, C: 0.2}); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := RMAT(RMATConfig{Scale: 4, EdgeFactor: 0, A: 0.5, B: 0.2, C: 0.2}); err == nil {
		t.Error("edge factor 0 accepted")
	}
	if _, err := RMAT(RMATConfig{Scale: 4, EdgeFactor: 1, A: 0.6, B: 0.3, C: 0.2}); err == nil {
		t.Error("probabilities > 1 accepted")
	}
}

func TestReferenceBFS(t *testing.T) {
	// Path graph 0-1-2-3 plus isolated vertex 4.
	ts := []sparse.Triplet{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 1, Col: 2, Val: 1}, {Row: 2, Col: 1, Val: 1},
		{Row: 2, Col: 3, Val: 1}, {Row: 3, Col: 2, Val: 1},
	}
	g, err := sparse.FromTriplets(5, 5, ts)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Reference(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 2, 3, Unreached}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
	if _, err := Reference(g, 9); err == nil {
		t.Error("bad source accepted")
	}
}

func TestBitsetHelpers(t *testing.T) {
	b := make([]byte, BitsetBytes(20))
	if len(b) != 3 {
		t.Fatalf("BitsetBytes(20) = %d", len(b))
	}
	SetBit(b, 0)
	SetBit(b, 9)
	SetBit(b, 19)
	if !GetBit(b, 9) || GetBit(b, 10) {
		t.Fatal("bit ops wrong")
	}
	if PopCount(b) != 3 {
		t.Fatalf("popcount = %d", PopCount(b))
	}
	mask := make([]byte, 3)
	SetBit(mask, 9)
	AndNot(b, mask)
	if GetBit(b, 9) || PopCount(b) != 2 {
		t.Fatal("AndNot wrong")
	}
	dst := make([]byte, 3)
	OrInto(dst, b)
	if PopCount(dst) != 2 {
		t.Fatal("OrInto wrong")
	}
}

// TestOutOfCoreBFSMatchesReference is the headline: BFS levels as DOoC task
// programs over staged adjacency blocks, distances equal to the in-core
// oracle, on an R-MAT (Graph500-style) graph.
func TestOutOfCoreBFSMatchesReference(t *testing.T) {
	g, err := RMAT(RMATConfig{Scale: 7, EdgeFactor: 4, A: 0.57, B: 0.19, C: 0.19, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	cfg := core.SpMVConfig{Dim: g.Rows, K: 3, Iters: 1, Nodes: 2, Tag: "t"}
	if err := core.StageMatrix(root, g, cfg); err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.Options{
		Nodes:          2,
		WorkersPerNode: 2,
		ScratchRoot:    root,
		MemoryBudget:   1 << 16,
		PrefetchWindow: 1,
		Reorder:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	drv := &Driver{Sys: sys, Cfg: cfg}
	got, err := drv.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// The traversal must have touched storage for real.
	var disk int64
	for n := 0; n < sys.Nodes(); n++ {
		disk += sys.Store(n).Stats().BytesReadDisk
	}
	if disk == 0 {
		t.Fatal("no out-of-core traffic during BFS")
	}
}

// TestOutOfCoreBFSDisconnected: unreachable vertices stay Unreached.
func TestOutOfCoreBFSDisconnected(t *testing.T) {
	// Two disjoint edges: 0-1 and 2-3, plus isolated 4..7.
	ts := []sparse.Triplet{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 2, Col: 3, Val: 1}, {Row: 3, Col: 2, Val: 1},
	}
	g, err := sparse.FromTriplets(8, 8, ts)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.Options{Nodes: 1, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	cfg := core.SpMVConfig{Dim: 8, K: 2, Iters: 1, Nodes: 1, Tag: "d"}
	if err := core.LoadMatrixInMemory(sys, g, cfg); err != nil {
		t.Fatal(err)
	}
	drv := &Driver{Sys: sys, Cfg: cfg}
	got, err := drv.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, Unreached, Unreached, Unreached, Unreached, Unreached, Unreached}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dist = %v, want %v", got, want)
		}
	}
}
