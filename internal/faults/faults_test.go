package faults

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var inj *Injector
	if err := inj.IO("read", "x"); err != nil {
		t.Fatalf("nil injector returned %v", err)
	}
	if inj.Drop() {
		t.Fatal("nil injector dropped")
	}
	if inj.Corrupt([]byte{1, 2, 3}) {
		t.Fatal("nil injector corrupted")
	}
	if inj.Counts().Total() != 0 {
		t.Fatal("nil injector counted")
	}
}

func TestZeroRatesInjectNothing(t *testing.T) {
	inj := New(Config{Seed: 7})
	for i := 0; i < 100; i++ {
		if err := inj.IO("write", "p"); err != nil {
			t.Fatalf("zero-rate IO error: %v", err)
		}
		if inj.Drop() || inj.Corrupt([]byte{0xff}) {
			t.Fatal("zero-rate fault injected")
		}
	}
	if inj.Counts().Total() != 0 {
		t.Fatal("zero-rate injector counted faults")
	}
}

func TestIOErrorsAreInjectedAndMarked(t *testing.T) {
	inj := New(Config{Seed: 1, IOErrorRate: 1})
	err := inj.IO("read", "/scratch/a.arr")
	if err == nil {
		t.Fatal("rate-1 injector produced no error")
	}
	if !IsInjected(err) {
		t.Fatalf("injected error not marked: %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatal("errors.Is(ErrInjected) false")
	}
	if got := inj.Counts().IOErrors; got != 1 {
		t.Fatalf("IOErrors = %d", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []bool {
		inj := New(Config{Seed: 42, IOErrorRate: 0.5, DropRate: 0.5})
		var out []bool
		for i := 0; i < 50; i++ {
			out = append(out, inj.IO("read", "p") != nil)
			out = append(out, inj.Drop())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
	}
}

func TestMaxInjectionsBudget(t *testing.T) {
	inj := New(Config{Seed: 3, IOErrorRate: 1, MaxInjections: 5})
	fails := 0
	for i := 0; i < 100; i++ {
		if inj.IO("read", "p") != nil {
			fails++
		}
	}
	if fails != 5 {
		t.Fatalf("budget 5, injected %d", fails)
	}
	if inj.Counts().Total() != 5 {
		t.Fatalf("counts %d", inj.Counts().Total())
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	inj := New(Config{Seed: 9, CorruptRate: 1})
	orig := []byte{0, 1, 2, 3, 4, 5, 6, 7}
	data := append([]byte(nil), orig...)
	if !inj.Corrupt(data) {
		t.Fatal("rate-1 corrupt did nothing")
	}
	diff := 0
	for i := range data {
		if data[i] != orig[i] {
			diff++
			if x := data[i] ^ orig[i]; x&(x-1) != 0 {
				t.Fatalf("byte %d changed by more than one bit: %02x -> %02x", i, orig[i], data[i])
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes changed", diff)
	}
	if inj.Corrupt(nil) {
		t.Fatal("corrupted empty payload")
	}
	if !bytes.Equal(orig, []byte{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Fatal("original mutated")
	}
}

func TestStallDelays(t *testing.T) {
	inj := New(Config{Seed: 2, IOStallRate: 1, StallDuration: 5 * time.Millisecond})
	start := time.Now()
	if err := inj.IO("read", "p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Fatalf("stall too short: %v", d)
	}
	if got := inj.Counts().IOStalls; got != 1 {
		t.Fatalf("IOStalls = %d", got)
	}
}
