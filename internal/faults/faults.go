// Package faults is a deterministic fault-injection harness for the DOoC
// runtime. An Injector is seeded and rate-configured once, then threaded
// into the storage layer's I/O filters (disk errors and stalls) and the
// remote layer's connections (drops and payload corruption), so every
// failure mode the recovery machinery claims to survive is reproducible in
// a test instead of waiting for a flaky SSD at 3am.
//
// All methods are safe for concurrent use and safe on a nil receiver (a nil
// *Injector injects nothing), which keeps the production call sites
// branch-free.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected marks every error produced by an Injector. Recovery layers
// treat injected errors as transient: they model an SSD hiccup or a dropped
// frame, not a missing file.
var ErrInjected = errors.New("injected fault")

// IsInjected reports whether err originates from an Injector.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// Config sets the fault plan.
type Config struct {
	// Seed drives every injection decision. The same seed and call sequence
	// reproduce the same fault plan.
	Seed int64
	// IOErrorRate is the probability that one disk read/write attempt fails
	// with a transient injected error.
	IOErrorRate float64
	// IOStallRate is the probability that one disk I/O attempt stalls for
	// StallDuration before proceeding (a latency spike, not a failure).
	IOStallRate float64
	// StallDuration is how long an injected stall lasts (default 2ms).
	StallDuration time.Duration
	// DropRate is the probability that sending one network frame tears the
	// connection down instead.
	DropRate float64
	// CorruptRate is the probability that one payload frame has a byte
	// flipped in flight (after its checksum was computed).
	CorruptRate float64
	// MaxInjections bounds the total number of injected faults across all
	// kinds (0 = unlimited). Tests use it to guarantee that bounded retry
	// budgets eventually win.
	MaxInjections int
}

// Counts reports how many faults of each kind have been injected.
type Counts struct {
	IOErrors    int
	IOStalls    int
	Drops       int
	Corruptions int
}

// Total sums the injected faults across kinds.
func (c Counts) Total() int { return c.IOErrors + c.IOStalls + c.Drops + c.Corruptions }

// Injector produces faults according to its Config.
type Injector struct {
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	counts Counts
}

// New builds an injector. A zero Config injects nothing.
func New(cfg Config) *Injector {
	if cfg.StallDuration <= 0 {
		cfg.StallDuration = 2 * time.Millisecond
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed ^ 0xfa17))}
}

// budgetLeft reports whether MaxInjections allows another fault. Caller
// holds mu.
func (i *Injector) budgetLeft() bool {
	return i.cfg.MaxInjections <= 0 || i.counts.Total() < i.cfg.MaxInjections
}

// IO consults the fault plan for one disk operation: it may stall (sleeping
// StallDuration) and may return a transient injected error the caller should
// retry. op is "read" or "write"; path names the file for attribution.
func (i *Injector) IO(op, path string) error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	stall := i.budgetLeft() && i.cfg.IOStallRate > 0 && i.rng.Float64() < i.cfg.IOStallRate
	if stall {
		i.counts.IOStalls++
	}
	fail := i.budgetLeft() && i.cfg.IOErrorRate > 0 && i.rng.Float64() < i.cfg.IOErrorRate
	if fail {
		i.counts.IOErrors++
	}
	d := i.cfg.StallDuration
	i.mu.Unlock()
	if stall {
		time.Sleep(d)
	}
	if fail {
		return fmt.Errorf("%w: transient %s error on %s", ErrInjected, op, path)
	}
	return nil
}

// Drop reports whether the caller should tear its connection down instead
// of sending the current frame.
func (i *Injector) Drop() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.budgetLeft() || i.cfg.DropRate <= 0 || i.rng.Float64() >= i.cfg.DropRate {
		return false
	}
	i.counts.Drops++
	return true
}

// Corrupt may flip one byte of data in place, returning whether it did.
// Callers corrupt a copy of the payload after computing its checksum, so
// the receiver's verification catches the damage.
func (i *Injector) Corrupt(data []byte) bool {
	if i == nil || len(data) == 0 {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.budgetLeft() || i.cfg.CorruptRate <= 0 || i.rng.Float64() >= i.cfg.CorruptRate {
		return false
	}
	i.counts.Corruptions++
	data[i.rng.Intn(len(data))] ^= 1 << uint(i.rng.Intn(8))
	return true
}

// Counts returns a snapshot of the injected-fault counters.
func (i *Injector) Counts() Counts {
	if i == nil {
		return Counts{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counts
}
