// Package svgplot is a minimal, dependency-free SVG chart writer used to
// regenerate the paper's figures as image files (doocplot). It supports the
// two shapes the evaluation needs: multi-series line/scatter charts with
// log or linear axes (Figs. 6 and 7) and horizontal Gantt lanes (Fig. 5).
package svgplot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X, Y []float64
	// Dashed draws a dashed line; Marker draws point markers.
	Dashed bool
	Marker bool
	// Color is an SVG color (assigned from a palette when empty).
	Color string
}

// Chart is a line/scatter chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogY uses a log10 y-axis.
	LogY bool
	// Width and Height in pixels (defaults 720x480).
	Width, Height int
	// Annotations are (x, y, text) callouts.
	Annotations []Annotation
}

// Annotation is a labeled point.
type Annotation struct {
	X, Y float64
	Text string
}

var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// Render writes the chart as a standalone SVG document.
func (c Chart) Render(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("svgplot: chart %q has no series", c.Title)
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 480
	}
	const marginL, marginR, marginT, marginB = 70, 160, 40, 50
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	// Data ranges.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("svgplot: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	for _, a := range c.Annotations {
		xmin, xmax = math.Min(xmin, a.X), math.Max(xmax, a.X)
		ymin, ymax = math.Min(ymin, a.Y), math.Max(ymax, a.Y)
	}
	if math.IsInf(xmin, 1) {
		return fmt.Errorf("svgplot: chart %q has no points", c.Title)
	}
	if c.LogY {
		if ymin <= 0 {
			return fmt.Errorf("svgplot: log axis needs positive y, got %v", ymin)
		}
		ymin, ymax = math.Log10(ymin), math.Log10(ymax)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad y range 5%.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	tx := func(x float64) float64 { return float64(marginL) + (x-xmin)/(xmax-xmin)*plotW }
	ty := func(y float64) float64 {
		if c.LogY {
			y = math.Log10(y)
		}
		return float64(marginT) + (1-(y-ymin)/(ymax-ymin))*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<text x="%f" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
		float64(marginL)+plotW/2, height-10, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%f" font-size="12" text-anchor="middle" transform="rotate(-90 16 %f)">%s</text>`+"\n",
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, esc(c.YLabel))

	// Ticks.
	for _, xt := range ticks(xmin, xmax, 6) {
		px := tx(xt)
		fmt.Fprintf(&b, `<line x1="%f" y1="%d" x2="%f" y2="%d" stroke="#ccc"/>`+"\n", px, marginT, px, height-marginB)
		fmt.Fprintf(&b, `<text x="%f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n", px, height-marginB+16, fmtTick(xt))
	}
	for _, yt := range ticks(ymin, ymax, 6) {
		val := yt
		if c.LogY {
			val = math.Pow(10, yt)
		}
		py := float64(marginT) + (1-(yt-ymin)/(ymax-ymin))*plotH
		fmt.Fprintf(&b, `<line x1="%d" y1="%f" x2="%d" y2="%f" stroke="#ccc"/>`+"\n", marginL, py, width-marginR, py)
		fmt.Fprintf(&b, `<text x="%d" y="%f" font-size="10" text-anchor="end">%s</text>`+"\n", marginL-6, py+4, fmtTick(val))
	}

	// Series.
	for si, s := range c.Series {
		color := s.Color
		if color == "" {
			color = palette[si%len(palette)]
		}
		if len(s.X) > 1 {
			var pts []string
			idx := make([]int, len(s.X))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
			for _, i := range idx {
				pts = append(pts, fmt.Sprintf("%.2f,%.2f", tx(s.X[i]), ty(s.Y[i])))
			}
			dash := ""
			if s.Dashed {
				dash = ` stroke-dasharray="6,4"`
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"%s/>`+"\n",
				strings.Join(pts, " "), color, dash)
		}
		if s.Marker || len(s.X) == 1 {
			for i := range s.X {
				fmt.Fprintf(&b, `<circle cx="%f" cy="%f" r="4" fill="%s"/>`+"\n", tx(s.X[i]), ty(s.Y[i]), color)
			}
		}
		// Legend.
		ly := marginT + 18*si
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			width-marginR+10, ly+8, width-marginR+34, ly+8, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n", width-marginR+40, ly+12, esc(s.Name))
	}

	// Annotations.
	for _, a := range c.Annotations {
		fmt.Fprintf(&b, `<text x="%f" y="%f" font-size="16" fill="#d62728" text-anchor="middle">★</text>`+"\n", tx(a.X), ty(a.Y)+5)
		fmt.Fprintf(&b, `<text x="%f" y="%f" font-size="10" fill="#d62728">%s</text>`+"\n", tx(a.X)+8, ty(a.Y)-6, esc(a.Text))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// GanttOp is one bar in a Gantt lane.
type GanttOp struct {
	Lane       int
	Start, End float64
	Label      string
	// Bold marks expensive operations (the paper's bold load cells).
	Bold bool
}

// Gantt is a per-lane schedule chart.
type Gantt struct {
	Title string
	Lanes []string
	Ops   []GanttOp
	Width int
}

// Render writes the Gantt as a standalone SVG document.
func (g Gantt) Render(w io.Writer) error {
	if len(g.Lanes) == 0 {
		return fmt.Errorf("svgplot: gantt %q has no lanes", g.Title)
	}
	width := g.Width
	if width <= 0 {
		width = 900
	}
	const marginL, marginT, laneH, laneGap = 60, 40, 34, 10
	height := marginT + len(g.Lanes)*(laneH+laneGap) + 30
	tmax := 0.0
	for _, op := range g.Ops {
		if op.Lane < 0 || op.Lane >= len(g.Lanes) {
			return fmt.Errorf("svgplot: op %q on lane %d of %d", op.Label, op.Lane, len(g.Lanes))
		}
		tmax = math.Max(tmax, op.End)
	}
	if tmax == 0 {
		tmax = 1
	}
	plotW := float64(width - marginL - 20)
	tx := func(t float64) float64 { return float64(marginL) + t/tmax*plotW }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, esc(g.Title))
	for i, lane := range g.Lanes {
		y := marginT + i*(laneH+laneGap)
		fmt.Fprintf(&b, `<text x="8" y="%d" font-size="12">%s</text>`+"\n", y+laneH/2+4, esc(lane))
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#eee"/>`+"\n", marginL, y+laneH, width-20, y+laneH)
	}
	for _, op := range g.Ops {
		y := marginT + op.Lane*(laneH+laneGap)
		x0, x1 := tx(op.Start), tx(op.End)
		fill := "#9ecae1"
		if op.Bold {
			fill = "#3182bd"
		}
		fmt.Fprintf(&b, `<rect x="%f" y="%d" width="%f" height="%d" fill="%s" stroke="white"/>`+"\n",
			x0, y, math.Max(x1-x0, 1), laneH, fill)
		if x1-x0 > 24 {
			fmt.Fprintf(&b, `<text x="%f" y="%d" font-size="9" text-anchor="middle" fill="white">%s</text>`+"\n",
				(x0+x1)/2, y+laneH/2+3, esc(op.Label))
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ticks returns ~n round tick values spanning [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if hi <= lo || n < 2 {
		return []float64{lo, hi}
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+1e-12; t += step {
		out = append(out, t)
	}
	return out
}

func fmtTick(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e5 || (a < 1e-3 && a > 0):
		return fmt.Sprintf("%.0e", v)
	case a >= 100 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
