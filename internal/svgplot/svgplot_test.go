package svgplot

import (
	"bytes"
	"strings"
	"testing"
)

func TestChartRenders(t *testing.T) {
	c := Chart{
		Title:  "test <chart>",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}},
			{Name: "b", X: []float64{1, 2, 3}, Y: []float64{2, 2, 2}, Dashed: true, Marker: true},
		},
		Annotations: []Annotation{{X: 2, Y: 4, Text: "star"}},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "test &lt;chart&gt;", "star", "circle"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Error("non-finite coordinates in output")
	}
}

func TestChartLogAxis(t *testing.T) {
	c := Chart{
		Title:  "log",
		Series: []Series{{Name: "s", X: []float64{1, 2, 3}, Y: []float64{0.1, 10, 1000}}},
		LogY:   true,
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	// Non-positive y under log must error.
	c.Series[0].Y[0] = 0
	if err := c.Render(&buf); err == nil {
		t.Fatal("log axis accepted non-positive value")
	}
}

func TestChartValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := (Chart{Title: "empty"}).Render(&buf); err == nil {
		t.Error("empty chart accepted")
	}
	bad := Chart{Series: []Series{{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := bad.Render(&buf); err == nil {
		t.Error("mismatched series accepted")
	}
}

func TestGanttRenders(t *testing.T) {
	g := Gantt{
		Title: "schedule",
		Lanes: []string{"P1", "P2"},
		Ops: []GanttOp{
			{Lane: 0, Start: 0, End: 3, Label: "L(A00)", Bold: true},
			{Lane: 0, Start: 3, End: 4, Label: "m00"},
			{Lane: 1, Start: 0, End: 2, Label: "L(A10)", Bold: true},
		},
	}
	var buf bytes.Buffer
	if err := g.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"P1", "P2", "rect", "m00"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestGanttValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := (Gantt{Title: "x"}).Render(&buf); err == nil {
		t.Error("laneless gantt accepted")
	}
	g := Gantt{Lanes: []string{"a"}, Ops: []GanttOp{{Lane: 5}}}
	if err := g.Render(&buf); err == nil {
		t.Error("out-of-range lane accepted")
	}
}

func TestTicksAreRound(t *testing.T) {
	ts := ticks(0, 100, 6)
	if len(ts) < 3 {
		t.Fatalf("ticks = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("ticks not increasing: %v", ts)
		}
	}
}
