// Package spmv builds the iterated sparse matrix-vector multiplication task
// program of the paper's Section IV: the matrix is partitioned into a K×K
// grid of sub-matrices; iteration t computes intermediate products
// x[t][u][v] = A[u][v] * x[t-1][v] followed by reductions
// x[t][u] = Σ_v x[t][u][v]. The resulting task list (Fig. 3) and its derived
// dependency DAG (Fig. 4) are consumed by the DOoC engine for real
// execution and by the schedule simulator for plan studies.
package spmv

import (
	"fmt"

	"dooc/internal/dag"
)

// ProgramConfig sizes the generated task program.
type ProgramConfig struct {
	// K is the grid order: K×K sub-matrices, K sub-vector parts.
	K int
	// Iters is the number of SpMV iterations.
	Iters int
	// SubBytes is the size of one sub-matrix block (the heavy, cache-driving
	// datum).
	SubBytes int64
	// VecBytes is the size of one sub-vector part.
	VecBytes int64
	// FlopsPerMult estimates one sub-matrix multiply (2*nnz of the block).
	FlopsPerMult float64
	// Prefix namespaces the vector and partial arrays of this program run,
	// so repeated programs (e.g. successive Lanczos steps) over the same
	// matrix never collide. Matrix array names are never prefixed: the
	// matrix is shared across runs.
	Prefix string
	// SplitWays, when > 1, splits every multiply into that many sub-tasks
	// over disjoint row ranges of its output — the paper's local-scheduler
	// task decomposition ("splits them (if possible) to match the
	// parallelism available on the node"). Each sub-task writes its row
	// range through an interval write lease on the shared partial array.
	SplitWays int
}

// Naming helpers shared by the engine, the simulator, and the benches.

// MatrixRef returns the heavy datum for sub-matrix A[u][v].
func (c ProgramConfig) MatrixRef(u, v int) dag.Ref {
	return dag.Ref{Array: MatrixArray(u, v), Block: 0, Bytes: c.SubBytes}
}

// VecRef returns the datum for sub-vector part u of iteration t
// (t == 0 is the seed vector).
func (c ProgramConfig) VecRef(t, u int) dag.Ref {
	return dag.Ref{Array: c.Prefix + VecArray(t, u), Block: 0, Bytes: c.VecBytes}
}

// PartialRef returns the datum for intermediate product x[t][u][v].
func (c ProgramConfig) PartialRef(t, u, v int) dag.Ref {
	return dag.Ref{Array: c.Prefix + PartialArray(t, u, v), Block: 0, Bytes: c.VecBytes}
}

// MatrixArray names the storage array holding A[u][v].
func MatrixArray(u, v int) string { return fmt.Sprintf("A_%03d_%03d", u, v) }

// VecArray names the storage array holding x[t][u].
func VecArray(t, u int) string { return fmt.Sprintf("x_%d_%d", t, u) }

// PartialArray names the storage array holding x[t][u][v].
func PartialArray(t, u, v int) string { return fmt.Sprintf("xp_%d_%d_%d", t, u, v) }

// PartialPartRef returns the datum for row-part p of intermediate product
// x[t][u][v] under a ways-way split.
func (c ProgramConfig) PartialPartRef(t, u, v, p, ways int) dag.Ref {
	return dag.Ref{
		Array: c.Prefix + PartialArray(t, u, v),
		Block: 0,
		Part:  p + 1, // Part 0 means "undivided"
		Bytes: c.VecBytes / int64(ways),
	}
}

// MultTaskID and ReduceTaskID name the generated tasks.
func MultTaskID(t, u, v int) string { return fmt.Sprintf("mult:%d:%d:%d", t, u, v) }

// MultPartTaskID names row-part p (of `ways`) of a split multiply.
func MultPartTaskID(t, u, v, p, ways int) string {
	return fmt.Sprintf("mult:%d:%d:%d:part%d/%d", t, u, v, p, ways)
}

// ParseMultPart recovers (t, u, v, p, ways) from a split-multiply task ID.
func ParseMultPart(id string) (t, u, v, p, ways int, err error) {
	if _, err = fmt.Sscanf(id, "mult:%d:%d:%d:part%d/%d", &t, &u, &v, &p, &ways); err != nil {
		return 0, 0, 0, 0, 0, fmt.Errorf("spmv: bad split-multiply id %q: %w", id, err)
	}
	return t, u, v, p, ways, nil
}

// ReduceTaskID names the reduction producing x[t][u].
func ReduceTaskID(t, u int) string { return fmt.Sprintf("reduce:%d:%d", t, u) }

// Program emits the task list for cfg: K*K multiplies and K reductions per
// iteration. At K=3 this is the paper's Fig. 3 command list — 9 sub-matrix
// multiplications per iteration plus the reductions (the paper counts "6
// sub-vector additions" because each K-way reduction is K-1 binary adds).
func Program(cfg ProgramConfig) ([]*dag.Task, error) {
	if cfg.K <= 0 || cfg.Iters <= 0 {
		return nil, fmt.Errorf("spmv: invalid program K=%d iters=%d", cfg.K, cfg.Iters)
	}
	ways := cfg.SplitWays
	if ways < 1 {
		ways = 1
	}
	var tasks []*dag.Task
	for t := 1; t <= cfg.Iters; t++ {
		for u := 0; u < cfg.K; u++ {
			for v := 0; v < cfg.K; v++ {
				if ways == 1 {
					tasks = append(tasks, &dag.Task{
						ID:      MultTaskID(t, u, v),
						Kind:    "multiply",
						Inputs:  []dag.Ref{cfg.MatrixRef(u, v), cfg.VecRef(t-1, v)},
						Outputs: []dag.Ref{cfg.PartialRef(t, u, v)},
						Heavy:   []dag.Ref{cfg.MatrixRef(u, v)},
						Flops:   cfg.FlopsPerMult,
					})
					continue
				}
				for p := 0; p < ways; p++ {
					tasks = append(tasks, &dag.Task{
						ID:      MultPartTaskID(t, u, v, p, ways),
						Kind:    "multiply-part",
						Inputs:  []dag.Ref{cfg.MatrixRef(u, v), cfg.VecRef(t-1, v)},
						Outputs: []dag.Ref{cfg.PartialPartRef(t, u, v, p, ways)},
						Heavy:   []dag.Ref{cfg.MatrixRef(u, v)},
						Flops:   cfg.FlopsPerMult / float64(ways),
					})
				}
			}
		}
		for u := 0; u < cfg.K; u++ {
			var in []dag.Ref
			for v := 0; v < cfg.K; v++ {
				if ways == 1 {
					in = append(in, cfg.PartialRef(t, u, v))
					continue
				}
				for p := 0; p < ways; p++ {
					in = append(in, cfg.PartialPartRef(t, u, v, p, ways))
				}
			}
			tasks = append(tasks, &dag.Task{
				ID:      ReduceTaskID(t, u),
				Kind:    "sum",
				Inputs:  in,
				Outputs: []dag.Ref{cfg.VecRef(t, u)},
				Heavy:   []dag.Ref{}, // vector parts should not drive cache policy
				Flops:   float64(cfg.K) * float64(cfg.VecBytes) / 8,
			})
		}
	}
	return tasks, nil
}

// RowAssignment places mult(t,u,v) and reduce(t,u) on node u — the paper's
// Fig. 5 ownership, where node u hosts sub-matrix row u and reduces its own
// output part. K must equal the node count.
func RowAssignment(cfg ProgramConfig) map[string]int {
	assign := make(map[string]int)
	ways := cfg.SplitWays
	if ways < 1 {
		ways = 1
	}
	for t := 1; t <= cfg.Iters; t++ {
		for u := 0; u < cfg.K; u++ {
			for v := 0; v < cfg.K; v++ {
				if ways == 1 {
					assign[MultTaskID(t, u, v)] = u
					continue
				}
				for p := 0; p < ways; p++ {
					assign[MultPartTaskID(t, u, v, p, ways)] = u
				}
			}
			assign[ReduceTaskID(t, u)] = u
		}
	}
	return assign
}

// Graph builds the derived DAG for cfg (convenience).
func Graph(cfg ProgramConfig) (*dag.Graph, error) {
	tasks, err := Program(cfg)
	if err != nil {
		return nil, err
	}
	return dag.Build(tasks)
}
