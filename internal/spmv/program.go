// Package spmv builds the iterated sparse matrix-vector multiplication task
// program of the paper's Section IV: the matrix is partitioned into a K×K
// grid of sub-matrices; iteration t computes intermediate products
// x[t][u][v] = A[u][v] * x[t-1][v] followed by reductions
// x[t][u] = Σ_v x[t][u][v]. The resulting task list (Fig. 3) and its derived
// dependency DAG (Fig. 4) are consumed by the DOoC engine for real
// execution and by the schedule simulator for plan studies.
package spmv

import (
	"fmt"
	"strconv"

	"dooc/internal/dag"
)

// ProgramConfig sizes the generated task program.
type ProgramConfig struct {
	// K is the grid order: K×K sub-matrices, K sub-vector parts.
	K int
	// Iters is the number of SpMV iterations.
	Iters int
	// SubBytes is the size of one sub-matrix block (the heavy, cache-driving
	// datum).
	SubBytes int64
	// VecBytes is the size of one sub-vector part.
	VecBytes int64
	// FlopsPerMult estimates one sub-matrix multiply (2*nnz of the block).
	FlopsPerMult float64
	// Prefix namespaces the vector and partial arrays of this program run,
	// so repeated programs (e.g. successive Lanczos steps) over the same
	// matrix never collide. Matrix array names are never prefixed: the
	// matrix is shared across runs.
	Prefix string
	// SplitWays, when > 1, splits every multiply into that many sub-tasks
	// over disjoint row ranges of its output — the paper's local-scheduler
	// task decomposition ("splits them (if possible) to match the
	// parallelism available on the node"). Each sub-task writes its row
	// range through an interval write lease on the shared partial array.
	SplitWays int
}

// Naming helpers shared by the engine, the simulator, and the benches.

// MatrixRef returns the heavy datum for sub-matrix A[u][v].
func (c ProgramConfig) MatrixRef(u, v int) dag.Ref {
	return dag.Ref{Array: MatrixArray(u, v), Block: 0, Bytes: c.SubBytes}
}

// VecRef returns the datum for sub-vector part u of iteration t
// (t == 0 is the seed vector).
func (c ProgramConfig) VecRef(t, u int) dag.Ref {
	return dag.Ref{Array: c.Prefix + VecArray(t, u), Block: 0, Bytes: c.VecBytes}
}

// PartialRef returns the datum for intermediate product x[t][u][v].
func (c ProgramConfig) PartialRef(t, u, v int) dag.Ref {
	return dag.Ref{Array: c.Prefix + PartialArray(t, u, v), Block: 0, Bytes: c.VecBytes}
}

// MatrixArray names the storage array holding A[u][v].
func MatrixArray(u, v int) string {
	b := make([]byte, 0, 12)
	b = append(b, 'A', '_')
	b = appendPad3(b, u)
	b = append(b, '_')
	b = appendPad3(b, v)
	return string(b)
}

// VecArray names the storage array holding x[t][u].
func VecArray(t, u int) string {
	b := make([]byte, 0, 16)
	b = append(b, 'x', '_')
	b = strconv.AppendInt(b, int64(t), 10)
	b = append(b, '_')
	b = strconv.AppendInt(b, int64(u), 10)
	return string(b)
}

// PartialArray names the storage array holding x[t][u][v].
func PartialArray(t, u, v int) string {
	b := make([]byte, 0, 20)
	b = append(b, 'x', 'p', '_')
	b = strconv.AppendInt(b, int64(t), 10)
	b = append(b, '_')
	b = strconv.AppendInt(b, int64(u), 10)
	b = append(b, '_')
	b = strconv.AppendInt(b, int64(v), 10)
	return string(b)
}

// PartialPartRef returns the datum for row-part p of intermediate product
// x[t][u][v] under a ways-way split.
func (c ProgramConfig) PartialPartRef(t, u, v, p, ways int) dag.Ref {
	return dag.Ref{
		Array: c.Prefix + PartialArray(t, u, v),
		Block: 0,
		Part:  p + 1, // Part 0 means "undivided"
		Bytes: c.VecBytes / int64(ways),
	}
}

// MultTaskID and ReduceTaskID name the generated tasks.
func MultTaskID(t, u, v int) string {
	b := make([]byte, 0, 24)
	b = append(b, "mult:"...)
	b = strconv.AppendInt(b, int64(t), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(u), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(v), 10)
	return string(b)
}

// MultPartTaskID names row-part p (of `ways`) of a split multiply.
func MultPartTaskID(t, u, v, p, ways int) string {
	b := make([]byte, 0, 32)
	b = append(b, MultTaskID(t, u, v)...)
	b = append(b, ":part"...)
	b = strconv.AppendInt(b, int64(p), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(ways), 10)
	return string(b)
}

// ParseMultPart recovers (t, u, v, p, ways) from a split-multiply task ID.
func ParseMultPart(id string) (t, u, v, p, ways int, err error) {
	bad := func() (int, int, int, int, int, error) {
		return 0, 0, 0, 0, 0, fmt.Errorf("spmv: bad split-multiply id %q", id)
	}
	rest, ok := cutPrefix(id, "mult:")
	if !ok {
		return bad()
	}
	if t, rest, ok = parseIntSep(rest, ':'); !ok {
		return bad()
	}
	if u, rest, ok = parseIntSep(rest, ':'); !ok {
		return bad()
	}
	if v, rest, ok = parseIntSep(rest, ':'); !ok {
		return bad()
	}
	if rest, ok = cutPrefix(rest, "part"); !ok {
		return bad()
	}
	if p, rest, ok = parseIntSep(rest, '/'); !ok {
		return bad()
	}
	if ways, rest, ok = parseIntSep(rest, 0); !ok || rest != "" {
		return bad()
	}
	return t, u, v, p, ways, nil
}

// ReduceTaskID names the reduction producing x[t][u].
func ReduceTaskID(t, u int) string {
	b := make([]byte, 0, 20)
	b = append(b, "reduce:"...)
	b = strconv.AppendInt(b, int64(t), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(u), 10)
	return string(b)
}

// Program emits the task list for cfg: K*K multiplies and K reductions per
// iteration. At K=3 this is the paper's Fig. 3 command list — 9 sub-matrix
// multiplications per iteration plus the reductions (the paper counts "6
// sub-vector additions" because each K-way reduction is K-1 binary adds).
func Program(cfg ProgramConfig) ([]*dag.Task, error) {
	if cfg.K <= 0 || cfg.Iters <= 0 {
		return nil, fmt.Errorf("spmv: invalid program K=%d iters=%d", cfg.K, cfg.Iters)
	}
	ways := cfg.SplitWays
	if ways < 1 {
		ways = 1
	}
	// Tasks and refs come from two exactly-sized backing arrays: per
	// iteration K*K*ways multiplies (4 refs each) and K reductions
	// (K*ways inputs + 1 output each). The capacities must be exact — task
	// pointers and ref sub-slices alias the backing arrays, so growth would
	// strand earlier entries.
	nTasks := cfg.Iters * (cfg.K*cfg.K*ways + cfg.K)
	nRefs := cfg.Iters * (cfg.K*cfg.K*ways*4 + cfg.K*(cfg.K*ways+1))
	taskBuf := make([]dag.Task, 0, nTasks)
	refs := make([]dag.Ref, 0, nRefs)
	tasks := make([]*dag.Task, 0, nTasks)
	cut := func(start int) []dag.Ref { return refs[start:len(refs):len(refs)] }
	// Each distinct array name is built exactly once: every name is
	// referenced several times per build (a matrix block 2×ways×Iters
	// times), and the prefix concatenation in the Ref helpers would
	// otherwise re-allocate the same strings throughout the loop.
	matNames := make([]string, cfg.K*cfg.K)
	for u := 0; u < cfg.K; u++ {
		for v := 0; v < cfg.K; v++ {
			matNames[u*cfg.K+v] = MatrixArray(u, v)
		}
	}
	vecNames := make([]string, (cfg.Iters+1)*cfg.K)
	for t := 0; t <= cfg.Iters; t++ {
		for u := 0; u < cfg.K; u++ {
			vecNames[t*cfg.K+u] = cfg.Prefix + VecArray(t, u)
		}
	}
	partNames := make([]string, cfg.Iters*cfg.K*cfg.K)
	for t := 1; t <= cfg.Iters; t++ {
		for u := 0; u < cfg.K; u++ {
			for v := 0; v < cfg.K; v++ {
				partNames[((t-1)*cfg.K+u)*cfg.K+v] = cfg.Prefix + PartialArray(t, u, v)
			}
		}
	}
	matRef := func(u, v int) dag.Ref {
		return dag.Ref{Array: matNames[u*cfg.K+v], Block: 0, Bytes: cfg.SubBytes}
	}
	vecRef := func(t, u int) dag.Ref {
		return dag.Ref{Array: vecNames[t*cfg.K+u], Block: 0, Bytes: cfg.VecBytes}
	}
	partName := func(t, u, v int) string { return partNames[((t-1)*cfg.K+u)*cfg.K+v] }
	for t := 1; t <= cfg.Iters; t++ {
		for u := 0; u < cfg.K; u++ {
			for v := 0; v < cfg.K; v++ {
				if ways == 1 {
					s := len(refs)
					refs = append(refs, matRef(u, v), vecRef(t-1, v))
					in := cut(s)
					s = len(refs)
					refs = append(refs, dag.Ref{Array: partName(t, u, v), Block: 0, Bytes: cfg.VecBytes})
					out := cut(s)
					s = len(refs)
					refs = append(refs, matRef(u, v))
					heavy := cut(s)
					taskBuf = append(taskBuf, dag.Task{
						ID:      MultTaskID(t, u, v),
						Kind:    "multiply",
						Inputs:  in,
						Outputs: out,
						Heavy:   heavy,
						Flops:   cfg.FlopsPerMult,
					})
					tasks = append(tasks, &taskBuf[len(taskBuf)-1])
					continue
				}
				for p := 0; p < ways; p++ {
					s := len(refs)
					refs = append(refs, matRef(u, v), vecRef(t-1, v))
					in := cut(s)
					s = len(refs)
					refs = append(refs, dag.Ref{
						Array: partName(t, u, v),
						Block: 0,
						Part:  p + 1,
						Bytes: cfg.VecBytes / int64(ways),
					})
					out := cut(s)
					s = len(refs)
					refs = append(refs, matRef(u, v))
					heavy := cut(s)
					taskBuf = append(taskBuf, dag.Task{
						ID:      MultPartTaskID(t, u, v, p, ways),
						Kind:    "multiply-part",
						Inputs:  in,
						Outputs: out,
						Heavy:   heavy,
						Flops:   cfg.FlopsPerMult / float64(ways),
					})
					tasks = append(tasks, &taskBuf[len(taskBuf)-1])
				}
			}
		}
		for u := 0; u < cfg.K; u++ {
			s := len(refs)
			for v := 0; v < cfg.K; v++ {
				if ways == 1 {
					refs = append(refs, dag.Ref{Array: partName(t, u, v), Block: 0, Bytes: cfg.VecBytes})
					continue
				}
				for p := 0; p < ways; p++ {
					refs = append(refs, dag.Ref{
						Array: partName(t, u, v),
						Block: 0,
						Part:  p + 1,
						Bytes: cfg.VecBytes / int64(ways),
					})
				}
			}
			in := cut(s)
			s = len(refs)
			refs = append(refs, vecRef(t, u))
			out := cut(s)
			taskBuf = append(taskBuf, dag.Task{
				ID:      ReduceTaskID(t, u),
				Kind:    "sum",
				Inputs:  in,
				Outputs: out,
				Heavy:   refs[len(refs):len(refs):len(refs)], // explicitly empty: vector parts should not drive cache policy
				Flops:   float64(cfg.K) * float64(cfg.VecBytes) / 8,
			})
			tasks = append(tasks, &taskBuf[len(taskBuf)-1])
		}
	}
	return tasks, nil
}

// RowAssignment places mult(t,u,v) and reduce(t,u) on node u — the paper's
// Fig. 5 ownership, where node u hosts sub-matrix row u and reduces its own
// output part. K must equal the node count.
func RowAssignment(cfg ProgramConfig) map[string]int {
	assign := make(map[string]int)
	ways := cfg.SplitWays
	if ways < 1 {
		ways = 1
	}
	for t := 1; t <= cfg.Iters; t++ {
		for u := 0; u < cfg.K; u++ {
			for v := 0; v < cfg.K; v++ {
				if ways == 1 {
					assign[MultTaskID(t, u, v)] = u
					continue
				}
				for p := 0; p < ways; p++ {
					assign[MultPartTaskID(t, u, v, p, ways)] = u
				}
			}
			assign[ReduceTaskID(t, u)] = u
		}
	}
	return assign
}

// Graph builds the derived DAG for cfg (convenience).
func Graph(cfg ProgramConfig) (*dag.Graph, error) {
	tasks, err := Program(cfg)
	if err != nil {
		return nil, err
	}
	return dag.Build(tasks)
}
