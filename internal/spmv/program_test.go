package spmv

import (
	"dooc/internal/dag"
	"strings"
	"testing"
)

func TestProgramShape(t *testing.T) {
	cfg := ProgramConfig{K: 3, Iters: 2, SubBytes: 1000, VecBytes: 10}
	tasks, err := Program(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Per iteration: 9 multiplies + 3 reductions (Fig. 3).
	if len(tasks) != 2*(9+3) {
		t.Fatalf("%d tasks, want 24", len(tasks))
	}
	mults, sums := 0, 0
	for _, tk := range tasks {
		switch tk.Kind {
		case "multiply":
			mults++
			if len(tk.Heavy) != 1 || !strings.HasPrefix(tk.Heavy[0].Array, "A_") {
				t.Fatalf("multiply %s heavy = %v", tk.ID, tk.Heavy)
			}
		case "sum":
			sums++
		}
	}
	if mults != 18 || sums != 6 {
		t.Fatalf("mults=%d sums=%d", mults, sums)
	}
}

func TestProgramValidation(t *testing.T) {
	if _, err := Program(ProgramConfig{K: 0, Iters: 1}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Program(ProgramConfig{K: 1, Iters: 0}); err == nil {
		t.Error("iters=0 accepted")
	}
}

func TestGraphDependencies(t *testing.T) {
	cfg := ProgramConfig{K: 2, Iters: 2, SubBytes: 100, VecBytes: 8}
	g, err := Graph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// mult(2,u,v) depends on reduce(1,v) — the Fig. 4 structure.
	preds := g.Preds(MultTaskID(2, 0, 1))
	if len(preds) != 1 || preds[0] != ReduceTaskID(1, 1) {
		t.Fatalf("preds of mult(2,0,1) = %v", preds)
	}
	// reduce(1,u) depends on all mult(1,u,*).
	preds = g.Preds(ReduceTaskID(1, 0))
	if len(preds) != 2 {
		t.Fatalf("preds of reduce(1,0) = %v", preds)
	}
	// First-iteration multiplies are ready at once (x0 is seed data).
	ready := g.Ready()
	if len(ready) != 4 {
		t.Fatalf("initial ready = %v", ready)
	}
	// Critical path: iters alternations of mult -> reduce.
	if got := g.CriticalPathLen(); got != 4 {
		t.Fatalf("critical path = %d, want 4", got)
	}
}

func TestRowAssignment(t *testing.T) {
	cfg := ProgramConfig{K: 3, Iters: 1, SubBytes: 1, VecBytes: 1}
	assign := RowAssignment(cfg)
	if assign[MultTaskID(1, 2, 0)] != 2 {
		t.Error("mult(1,2,0) not on node 2")
	}
	if assign[ReduceTaskID(1, 1)] != 1 {
		t.Error("reduce(1,1) not on node 1")
	}
	if len(assign) != 9+3 {
		t.Errorf("assignment covers %d tasks", len(assign))
	}
}

func TestSplitProgramShape(t *testing.T) {
	cfg := ProgramConfig{K: 2, Iters: 2, SubBytes: 100, VecBytes: 16, SplitWays: 3}
	tasks, err := Program(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Per iteration: K*K*ways multiply-parts + K sums.
	wantMult := 2 * 2 * 2 * 3
	mults, sums := 0, 0
	for _, tk := range tasks {
		switch tk.Kind {
		case "multiply-part":
			mults++
			tt, u, v, p, ways, err := ParseMultPart(tk.ID)
			if err != nil {
				t.Fatal(err)
			}
			if ways != 3 || p < 0 || p >= 3 || tt < 1 || tt > 2 || u < 0 || u > 1 || v < 0 || v > 1 {
				t.Fatalf("bad parsed fields from %s", tk.ID)
			}
			if tk.Outputs[0].Part != p+1 {
				t.Fatalf("%s output part = %d, want %d", tk.ID, tk.Outputs[0].Part, p+1)
			}
		case "multiply":
			t.Fatalf("unsplit multiply %s in split program", tk.ID)
		case "sum":
			sums++
			if len(tk.Inputs) != 2*3 { // K*ways partial parts
				t.Fatalf("sum %s has %d inputs", tk.ID, len(tk.Inputs))
			}
		}
	}
	if mults != wantMult || sums != 4 {
		t.Fatalf("mults=%d sums=%d, want %d and 4", mults, sums, wantMult)
	}
	// The derived DAG keeps the same critical structure: every part of
	// iteration 2 depends on exactly one reduce of iteration 1.
	g, err := dag.Build(tasks)
	if err != nil {
		t.Fatal(err)
	}
	preds := g.Preds(MultPartTaskID(2, 0, 1, 2, 3))
	if len(preds) != 1 || preds[0] != ReduceTaskID(1, 1) {
		t.Fatalf("preds = %v", preds)
	}
	// Assignment covers every task.
	assign := RowAssignment(cfg)
	for _, tk := range tasks {
		if _, ok := assign[tk.ID]; !ok {
			t.Fatalf("task %s unassigned", tk.ID)
		}
	}
	if _, _, _, _, _, err := ParseMultPart("mult:1:2:3"); err == nil {
		t.Fatal("unsplit ID parsed as split")
	}
}
