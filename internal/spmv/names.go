package spmv

// Hand-rolled name parsing and formatting helpers. The engine resolves an
// owner node for every data reference it places or fetches, so these run on
// the hot path of task admission; fmt.Sscanf allocates its scan state and
// boxes every operand, which shows up directly in allocs/iteration.

// appendPad3 appends n in decimal, zero-padded to at least 3 digits
// (matching the %03d used by matrix array names).
func appendPad3(b []byte, n int) []byte {
	if n >= 0 && n < 1000 {
		b = append(b, byte('0'+n/100), byte('0'+n/10%10), byte('0'+n%10))
		return b
	}
	return appendInt(b, n)
}

func appendInt(b []byte, n int) []byte {
	if n < 0 {
		b = append(b, '-')
		n = -n
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

// cutPrefix is strings.CutPrefix without the extra import.
func cutPrefix(s, prefix string) (string, bool) {
	if len(s) < len(prefix) || s[:len(prefix)] != prefix {
		return s, false
	}
	return s[len(prefix):], true
}

// parseIntSep parses a non-negative decimal integer at the start of s,
// consuming it and the single separator byte that follows (sep == 0 means
// the number may run to the end of the string with no separator).
func parseIntSep(s string, sep byte) (val int, rest string, ok bool) {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		if val > (1<<62)/10 {
			return 0, s, false
		}
		val = val*10 + int(s[i]-'0')
		i++
	}
	if i == 0 {
		return 0, s, false
	}
	if sep == 0 {
		return val, s[i:], true
	}
	if i >= len(s) || s[i] != sep {
		return 0, s, false
	}
	return val, s[i+1:], true
}

// TaskIter extracts the iteration index t from a program task ID
// ("mult:<t>:<u>:<v>[...]" or "reduce:<t>:<u>") — the engine's hook for
// rolling task spans up into per-iteration spans. Alloc-free, like the
// array-name parsers, though it only runs when tracing is enabled.
func TaskIter(id string) (int, bool) {
	if rest, found := cutPrefix(id, "mult:"); found {
		t, _, ok := parseIntSep(rest, ':')
		return t, ok
	}
	if rest, found := cutPrefix(id, "reduce:"); found {
		t, _, ok := parseIntSep(rest, ':')
		return t, ok
	}
	return 0, false
}

// OwnerIndex extracts the grid row index u that determines data placement
// from an array name (after any program prefix has been trimmed):
//
//	A_{u}_{v}   -> u
//	x_{t}_{u}   -> u
//	xp_{t}_{u}_{v} -> u
//
// ok is false for names that are not spmv program arrays.
func OwnerIndex(name string) (int, bool) {
	if rest, found := cutPrefix(name, "A_"); found {
		u, _, ok := parseIntSep(rest, '_')
		return u, ok
	}
	if rest, found := cutPrefix(name, "xp_"); found {
		// Skip t, return u.
		if _, rest, ok := parseIntSep(rest, '_'); ok {
			u, _, ok2 := parseIntSep(rest, '_')
			return u, ok2
		}
		return 0, false
	}
	if rest, found := cutPrefix(name, "x_"); found {
		if _, rest, ok := parseIntSep(rest, '_'); ok {
			u, _, ok2 := parseIntSep(rest, 0)
			return u, ok2
		}
		return 0, false
	}
	return 0, false
}
