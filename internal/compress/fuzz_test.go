package compress

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzRoundTrip is the shared property for every codec: (1) an encoded
// frame decodes back to the exact input, and (2) a mutated frame either
// errors or still yields the exact input — never silently wrong bytes.
func fuzzRoundTrip(f *testing.F, c Codec) {
	f.Add([]byte(nil), uint16(0))
	f.Add([]byte{0}, uint16(1))
	f.Add(bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 16), uint16(9))
	mono := make([]byte, 0, 64*8)
	for i := 0; i < 64; i++ {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], uint64(i*3))
		mono = append(mono, w[:]...)
	}
	f.Add(mono, uint16(100))
	f.Fuzz(func(t *testing.T, src []byte, mut uint16) {
		frame := EncodeFrame(c, src)
		got, used, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("decode of own frame: %v", err)
		}
		if used.ID() != c.ID() || !bytes.Equal(got, src) {
			t.Fatalf("round trip mismatch: codec %s, %d bytes in, %d out", used.Name(), len(src), len(got))
		}

		// Mutate one byte at a fuzz-chosen position.
		bad := append([]byte(nil), frame...)
		pos := int(mut) % len(bad)
		bad[pos] ^= 1 << (mut % 8)
		if bytes.Equal(bad, frame) {
			return
		}
		if got, _, err := DecodeFrame(bad); err == nil && !bytes.Equal(got, src) {
			t.Fatalf("mutated frame (byte %d) decoded to wrong bytes without error", pos)
		}

		// Truncate at a fuzz-chosen position.
		cut := frame[:pos]
		if got, _, err := DecodeFrame(cut); err == nil && !bytes.Equal(got, src) {
			t.Fatalf("truncated frame (%d bytes) decoded to wrong bytes without error", pos)
		}
	})
}

func FuzzRawRoundTrip(f *testing.F)           { fuzzRoundTrip(f, Raw{}) }
func FuzzDeltaVarint64RoundTrip(f *testing.F) { fuzzRoundTrip(f, mustByID(f, IDDeltaVarint)) }
func FuzzDeltaVarint32RoundTrip(f *testing.F) { fuzzRoundTrip(f, mustByID(f, IDDeltaVarint3)) }
func FuzzFloatShuffleRoundTrip(f *testing.F)  { fuzzRoundTrip(f, FloatShuffle{}) }

func mustByID(f *testing.F, id uint8) Codec {
	c, ok := ByID(id)
	if !ok {
		f.Fatalf("codec %d not registered", id)
	}
	return c
}

// FuzzDecodeFrame throws arbitrary bytes at the frame decoder: it must
// never panic, and any accepted frame must satisfy its own header (length
// and CRC), which DecodeFrame enforces internally.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("DOZ1"))
	f.Add(EncodeFrame(Raw{}, []byte("seed")))
	f.Add(EncodeFrame(FloatShuffle{}, bytes.Repeat([]byte{0, 1}, 64)))
	f.Fuzz(func(t *testing.T, data []byte) {
		out, c, err := DecodeFrame(data)
		if err == nil {
			// Accepted: the frame header must describe exactly this output.
			if uint64(len(out)) != binary.LittleEndian.Uint64(data[6:]) {
				t.Fatalf("accepted frame: output %d bytes, header %d", len(out), binary.LittleEndian.Uint64(data[6:]))
			}
			if c == nil {
				t.Fatal("accepted frame with nil codec")
			}
		}
	})
}

// FuzzLZDecode throws arbitrary token streams and length claims at the LZ
// decoder: no panics, no out-of-bounds reads, output never exceeds the
// declared length.
func FuzzLZDecode(f *testing.F) {
	f.Add([]byte(nil), 0)
	f.Add([]byte{0x00, 'a'}, 1)
	f.Add([]byte{0x80, 0x01, 0x00}, 4)
	f.Add(lzEncode(nil, bytes.Repeat([]byte("abc"), 50)), 150)
	f.Fuzz(func(t *testing.T, data []byte, rawLen int) {
		if rawLen < 0 || rawLen > 1<<20 {
			return
		}
		out, err := lzDecode(data, rawLen)
		if err == nil && len(out) != rawLen {
			t.Fatalf("accepted stream decoded to %d bytes, want %d", len(out), rawLen)
		}
	})
}
