package compress

import (
	"encoding/binary"
	"fmt"
)

// DeltaVarint encodes the payload as a stream of fixed-width little-endian
// words (Width 8 or 4), replacing each word with the zigzag varint of its
// wrapping delta from the previous word. CRS row pointers are monotone with
// small gaps and column indices within a row are sorted, so both collapse
// to one- or two-byte deltas. Any trailing bytes that do not fill a word
// are copied verbatim. The transform is exact for arbitrary input: deltas
// wrap, so even random words round-trip (they just do not shrink, and the
// adaptive frame encoder bails to Raw).
type DeltaVarint struct {
	// Width is the word size in bytes: 8 (int64 row pointers) or 4
	// (int32 column indices).
	Width int

	id   uint8
	name string
}

// ID returns the codec's registered wire ID.
func (d DeltaVarint) ID() uint8 { return d.id }

// Name returns the codec's registered name.
func (d DeltaVarint) Name() string { return d.name }

// Encode appends the delta-varint form of src to dst.
func (d DeltaVarint) Encode(dst, src []byte) []byte {
	w := d.Width
	n := len(src) / w
	var tmp [binary.MaxVarintLen64]byte
	var prev uint64
	for i := 0; i < n; i++ {
		var v uint64
		if w == 8 {
			v = binary.LittleEndian.Uint64(src[i*8:])
		} else {
			v = uint64(binary.LittleEndian.Uint32(src[i*4:]))
		}
		delta := int64(v - prev)
		if w == 4 {
			delta = int64(int32(uint32(v) - uint32(prev)))
		}
		zz := uint64(delta<<1) ^ uint64(delta>>63)
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], zz)]...)
		prev = v
	}
	return append(dst, src[n*w:]...)
}

// Decode reverses Encode. It validates that the varint stream is well
// formed and that exactly rawLen bytes are reconstructed.
func (d DeltaVarint) Decode(src []byte, rawLen int) ([]byte, error) {
	w := d.Width
	if rawLen < 0 {
		return nil, fmt.Errorf("%w: negative length", ErrCorrupt)
	}
	// Every decoded word consumes at least one varint byte, so the input
	// bounds the output; rejecting a larger claim here keeps a forged frame
	// header from driving the allocation below.
	if maxOut := (len(src) + 1) * w; rawLen > maxOut {
		return nil, fmt.Errorf("%w: %d input bytes cannot decode to %d", ErrCorrupt, len(src), rawLen)
	}
	n := rawLen / w
	tail := rawLen % w
	out := make([]byte, 0, rawLen)
	var prev uint64
	for i := 0; i < n; i++ {
		zz, used := binary.Uvarint(src)
		if used <= 0 {
			return nil, fmt.Errorf("%w: truncated or overlong varint at word %d", ErrCorrupt, i)
		}
		src = src[used:]
		delta := int64(zz>>1) ^ -int64(zz&1)
		var word [8]byte
		if w == 8 {
			prev += uint64(delta)
			binary.LittleEndian.PutUint64(word[:], prev)
		} else {
			prev = uint64(uint32(prev) + uint32(delta))
			binary.LittleEndian.PutUint32(word[:], uint32(prev))
		}
		out = append(out, word[:w]...)
	}
	if len(src) != tail {
		return nil, fmt.Errorf("%w: %d trailing bytes, want %d", ErrCorrupt, len(src), tail)
	}
	return append(out, src...), nil
}
