package compress

import (
	"encoding/binary"
	"fmt"
)

// floatShuffleCodec is the registered FloatShuffle instance (see Default).
var floatShuffleCodec = FloatShuffle{}

// FloatShuffle targets float64 payloads: vectors, CRS value sections,
// checkpoint blocks. Stage one transposes the payload into byte planes —
// plane k holds byte k of every 8-byte word — so the slowly-varying sign,
// exponent, and high-mantissa bytes of numerically smooth data land next
// to each other. Stage two runs a small LZ window matcher over the planes,
// where those now-repetitive bytes actually compress. Bytes past the last
// full word pass through the LZ stage unshuffled.
type FloatShuffle struct{}

// ID returns IDFloatShuffle.
func (FloatShuffle) ID() uint8 { return IDFloatShuffle }

// Name returns "fshuf".
func (FloatShuffle) Name() string { return "fshuf" }

// Encode appends shuffle+LZ of src to dst.
func (FloatShuffle) Encode(dst, src []byte) []byte {
	return lzEncode(dst, shuffle(src))
}

// Decode reverses Encode, validating every match reference against the
// already-produced output.
func (FloatShuffle) Decode(src []byte, rawLen int) ([]byte, error) {
	planes, err := lzDecode(src, rawLen)
	if err != nil {
		return nil, err
	}
	return unshuffle(planes), nil
}

// shuffle transposes src into 8 byte planes; the tail (len%8) is appended
// verbatim.
func shuffle(src []byte) []byte {
	n := len(src) / 8
	out := make([]byte, len(src))
	for k := 0; k < 8; k++ {
		plane := out[k*n : (k+1)*n]
		for i := 0; i < n; i++ {
			plane[i] = src[i*8+k]
		}
	}
	copy(out[8*n:], src[8*n:])
	return out
}

// unshuffle inverts shuffle.
func unshuffle(src []byte) []byte {
	n := len(src) / 8
	out := make([]byte, len(src))
	for k := 0; k < 8; k++ {
		plane := src[k*n : (k+1)*n]
		for i := 0; i < n; i++ {
			out[i*8+k] = plane[i]
		}
	}
	copy(out[8*n:], src[8*n:])
	return out
}

// ---- small LZ window matcher ----
//
// Token stream:
//
//	control byte 0x00..0x7F: literal run of control+1 bytes follows
//	control byte 0x80..0xFF: match of length (control&0x7F)+4 at a
//	                         2-byte little-endian backward offset (1..65535)
//
// Greedy matching against a 2^15-entry hash table of 4-byte keys. The
// window is the offset range, 64 KiB. This is deliberately tiny — the win
// comes from the byte planes being repetitive, not from clever parsing.
const (
	lzMinMatch  = 4
	lzMaxMatch  = lzMinMatch + 0x7F
	lzMaxOffset = 1 << 16
	lzHashBits  = 15
)

func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzHashBits)
}

// lzEncode appends the token stream for src to dst.
func lzEncode(dst, src []byte) []byte {
	var table [1 << lzHashBits]int32
	for i := range table {
		table[i] = -1
	}
	litStart := 0
	flushLits := func(end int) {
		for litStart < end {
			run := end - litStart
			if run > 128 {
				run = 128
			}
			dst = append(dst, byte(run-1))
			dst = append(dst, src[litStart:litStart+run]...)
			litStart += run
		}
	}
	i := 0
	for i+lzMinMatch <= len(src) {
		key := lzHash(binary.LittleEndian.Uint32(src[i:]))
		cand := table[key]
		table[key] = int32(i)
		if cand >= 0 && i-int(cand) < lzMaxOffset &&
			binary.LittleEndian.Uint32(src[cand:]) == binary.LittleEndian.Uint32(src[i:]) {
			length := lzMinMatch
			for i+length < len(src) && length < lzMaxMatch && src[int(cand)+length] == src[i+length] {
				length++
			}
			flushLits(i)
			dst = append(dst, 0x80|byte(length-lzMinMatch), 0, 0)
			binary.LittleEndian.PutUint16(dst[len(dst)-2:], uint16(i-int(cand)))
			i += length
			litStart = i
			continue
		}
		i++
	}
	flushLits(len(src))
	return dst
}

// lzDecode expands a token stream to exactly rawLen bytes, rejecting any
// token that reads before the output start or past rawLen.
func lzDecode(src []byte, rawLen int) ([]byte, error) {
	if rawLen < 0 {
		return nil, fmt.Errorf("%w: negative length", ErrCorrupt)
	}
	// A 3-byte match token expands to at most lzMaxMatch bytes, so the input
	// bounds the output; rejecting a larger claim here keeps a forged frame
	// header from driving the allocation below.
	if maxOut := (len(src)/3 + 1) * lzMaxMatch; rawLen > maxOut {
		return nil, fmt.Errorf("%w: %d input bytes cannot decode to %d", ErrCorrupt, len(src), rawLen)
	}
	out := make([]byte, 0, rawLen)
	for len(src) > 0 {
		ctrl := src[0]
		src = src[1:]
		if ctrl < 0x80 {
			run := int(ctrl) + 1
			if run > len(src) {
				return nil, fmt.Errorf("%w: literal run of %d overruns input", ErrCorrupt, run)
			}
			if len(out)+run > rawLen {
				return nil, fmt.Errorf("%w: output exceeds declared length %d", ErrCorrupt, rawLen)
			}
			out = append(out, src[:run]...)
			src = src[run:]
			continue
		}
		if len(src) < 2 {
			return nil, fmt.Errorf("%w: truncated match token", ErrCorrupt)
		}
		length := int(ctrl&0x7F) + lzMinMatch
		offset := int(binary.LittleEndian.Uint16(src))
		src = src[2:]
		if offset == 0 || offset > len(out) {
			return nil, fmt.Errorf("%w: match offset %d outside %d decoded bytes", ErrCorrupt, offset, len(out))
		}
		if len(out)+length > rawLen {
			return nil, fmt.Errorf("%w: output exceeds declared length %d", ErrCorrupt, rawLen)
		}
		// Byte-at-a-time: matches may overlap their own output.
		pos := len(out) - offset
		for j := 0; j < length; j++ {
			out = append(out, out[pos+j])
		}
	}
	if len(out) != rawLen {
		return nil, fmt.Errorf("%w: decoded %d bytes, want %d", ErrCorrupt, len(out), rawLen)
	}
	return out, nil
}
