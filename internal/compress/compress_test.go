package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// payloads returns named byte streams shaped like what the runtime moves:
// monotone row pointers, sorted column indices, smooth float64 values, and
// incompressible random bytes.
func payloads() map[string][]byte {
	rng := rand.New(rand.NewSource(7))

	rowptr := make([]byte, 0, 4096*8)
	var acc [8]byte
	ptr := int64(0)
	for i := 0; i < 4096; i++ {
		binary.LittleEndian.PutUint64(acc[:], uint64(ptr))
		rowptr = append(rowptr, acc[:]...)
		ptr += int64(rng.Intn(9))
	}

	colidx := make([]byte, 0, 4096*4)
	col := int32(0)
	for i := 0; i < 4096; i++ {
		binary.LittleEndian.PutUint32(acc[:4], uint32(col))
		colidx = append(colidx, acc[:4]...)
		col += int32(rng.Intn(5))
		if i%64 == 63 {
			col = int32(rng.Intn(10)) // new row restarts the run
		}
	}

	vals := make([]byte, 0, 4096*8)
	for i := 0; i < 4096; i++ {
		v := 1.0 + 1e-3*math.Sin(float64(i)/50)
		binary.LittleEndian.PutUint64(acc[:], math.Float64bits(v))
		vals = append(vals, acc[:]...)
	}

	random := make([]byte, 4096*8)
	rng.Read(random)

	return map[string][]byte{
		"rowptr": rowptr,
		"colidx": colidx,
		"values": vals,
		"random": random,
		"empty":  nil,
		"tiny":   {1, 2, 3},
		"odd":    bytes.Repeat([]byte{9, 8, 7, 6, 5}, 13), // not word aligned
	}
}

// TestFrameRoundTrip checks that every codec round-trips every payload
// shape exactly through the framed container.
func TestFrameRoundTrip(t *testing.T) {
	for _, name := range Names() {
		c, ok := ByName(name)
		if !ok {
			t.Fatalf("registry lists %q but cannot resolve it", name)
		}
		for pname, src := range payloads() {
			frame := EncodeFrame(c, src)
			got, used, err := DecodeFrame(frame)
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", name, pname, err)
			}
			if used.ID() != c.ID() {
				t.Fatalf("%s/%s: frame reports codec %s", name, pname, used.Name())
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("%s/%s: round trip mismatch (%d bytes in, %d out)", name, pname, len(src), len(got))
			}
		}
	}
}

// TestCompressionWins checks the codecs actually shrink the payloads they
// were designed for — otherwise the whole subsystem is dead weight.
func TestCompressionWins(t *testing.T) {
	p := payloads()
	cases := []struct {
		codec, payload string
		minRatio       float64
	}{
		{"delta64", "rowptr", 4},
		{"delta32", "colidx", 2},
		{"fshuf", "values", 1.5},
	}
	for _, tc := range cases {
		c, _ := ByName(tc.codec)
		src := p[tc.payload]
		frame := EncodeFrame(c, src)
		ratio := float64(len(src)) / float64(len(frame))
		if ratio < tc.minRatio {
			t.Errorf("%s on %s: ratio %.2f, want >= %.1f", tc.codec, tc.payload, ratio, tc.minRatio)
		}
	}
}

// TestEncodeAdaptiveBailsToRaw checks the ~1.1x bail-out: random bytes must
// be stored raw, compressible bytes must keep the codec.
func TestEncodeAdaptiveBailsToRaw(t *testing.T) {
	p := payloads()
	frame, used := EncodeAdaptive(Default(), p["random"])
	if used.ID() != IDRaw {
		t.Errorf("random block kept codec %s", used.Name())
	}
	if len(frame) != FrameHeaderLen+len(p["random"]) {
		t.Errorf("raw bail-out frame is %d bytes, want header+payload=%d", len(frame), FrameHeaderLen+len(p["random"]))
	}
	got, _, err := DecodeFrame(frame)
	if err != nil || !bytes.Equal(got, p["random"]) {
		t.Fatalf("raw bail-out round trip failed: %v", err)
	}

	if _, used := EncodeAdaptive(Default(), p["values"]); used.ID() != IDFloatShuffle {
		t.Errorf("smooth values bailed to %s", used.Name())
	}
	if _, used := EncodeAdaptive(nil, p["values"]); used.ID() != IDRaw {
		t.Errorf("nil codec must mean raw, got %s", used.Name())
	}
}

// TestDecodeFrameRejectsCorruption flips, truncates, and rewrites frames:
// every mutation must surface ErrCorrupt, never wrong bytes.
func TestDecodeFrameRejectsCorruption(t *testing.T) {
	src := payloads()["values"]
	for _, name := range Names() {
		c, _ := ByName(name)
		frame := EncodeFrame(c, src)

		for cut := 0; cut < len(frame); cut += 1 + len(frame)/17 {
			if got, _, err := DecodeFrame(frame[:cut]); err == nil && !bytes.Equal(got, src) {
				t.Fatalf("%s: truncation to %d returned wrong bytes without error", name, cut)
			}
		}
		for pos := 0; pos < len(frame); pos += 1 + len(frame)/41 {
			mut := append([]byte(nil), frame...)
			mut[pos] ^= 0x40
			got, _, err := DecodeFrame(mut)
			if err == nil && !bytes.Equal(got, src) {
				t.Fatalf("%s: bit flip at %d returned wrong bytes without error", name, pos)
			}
			if err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: bit flip at %d: error does not wrap ErrCorrupt: %v", name, pos, err)
			}
		}
	}
	if _, _, err := DecodeFrame(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("nil frame: %v", err)
	}
	bad := EncodeFrame(Raw{}, []byte("x"))
	bad[4] = 0xEE
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("unknown codec ID: %v", err)
	}
}

// TestRegistry checks lookup by ID and name, the capability mask, and the
// frame peek helper.
func TestRegistry(t *testing.T) {
	for _, id := range []uint8{IDRaw, IDDeltaVarint, IDDeltaVarint3, IDFloatShuffle} {
		c, ok := ByID(id)
		if !ok {
			t.Fatalf("codec ID %d not registered", id)
		}
		if c2, ok := ByName(c.Name()); !ok || c2.ID() != id {
			t.Fatalf("name %q does not resolve back to ID %d", c.Name(), id)
		}
	}
	if _, ok := ByID(200); ok {
		t.Error("unregistered ID resolved")
	}
	if m := Mask(); m&0x0F != 0x0F {
		t.Errorf("capability mask %08b missing a builtin codec", m)
	}
	frame := EncodeFrame(Default(), []byte("hello hello hello"))
	c, err := FrameCodec(frame)
	if err != nil || c.ID() != IDFloatShuffle {
		t.Errorf("FrameCodec = %v, %v", c, err)
	}
	if _, err := FrameCodec([]byte("nope")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("FrameCodec on junk: %v", err)
	}
}

// TestLZOverlappingMatch pins the classic RLE-via-overlap case: a match
// whose length exceeds its offset copies its own output.
func TestLZOverlappingMatch(t *testing.T) {
	src := bytes.Repeat([]byte{0xAB}, 300)
	enc := lzEncode(nil, src)
	if len(enc) >= len(src)/2 {
		t.Errorf("run of identical bytes barely compressed: %d -> %d", len(src), len(enc))
	}
	got, err := lzDecode(enc, len(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("overlap round trip failed: %v", err)
	}
}

func benchPayload() []byte { return payloads()["values"] }

func BenchmarkEncodeFloatShuffle(b *testing.B) {
	src := benchPayload()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeFrame(Default(), src)
	}
}

func BenchmarkDecodeFloatShuffle(b *testing.B) {
	frame := EncodeFrame(Default(), benchPayload())
	b.SetBytes(int64(len(benchPayload())))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendFrameAdaptiveReuse measures the wire/spill encode path as
// the storage and remote layers drive it: appending into a recycled
// destination buffer, which should be alloc-free at steady state.
func BenchmarkAppendFrameAdaptiveReuse(b *testing.B) {
	src := benchPayload()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = AppendFrameAdaptive(buf[:0], Default(), src)
	}
	_ = buf
}
