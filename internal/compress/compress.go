// Package compress is the middleware's block-compression subsystem. The
// paper's cost model is bytes moved — iterated SpMV out-of-core is bound by
// the SSDs and the interconnect — so every byte not written to scratch or
// shipped between nodes is reclaimed iteration time. This package supplies
// dependency-free codecs specialized for the payloads the runtime actually
// moves (monotone CRS row pointers, sorted column indices, float64 vector
// and value streams) behind a self-describing framed container, so any
// layer can decode any block regardless of which codec produced it.
//
// Codecs are registered in a process-wide registry keyed by a one-byte ID
// that travels in the frame header. The container carries the codec ID, the
// original length, and a CRC32-C of the original bytes: a truncated or
// bit-flipped frame decodes to an attributed error, never to wrong bytes.
//
// Compression is advisory, not guaranteed: EncodeAdaptive falls back to the
// Raw codec whenever a block compresses worse than ~1.1x, so incompressible
// data (random dense vectors) pays only the 18-byte frame header and no
// encode cost on the read path.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
)

// Codec is one pluggable block transform. Encode appends the encoded form
// of src to dst and returns the extended slice; Decode reverses it given
// the original length. Implementations must tolerate arbitrary src bytes in
// Decode: corrupt input returns an error, never panics.
type Codec interface {
	// ID is the codec's wire identity, carried in every frame header.
	ID() uint8
	// Name is the codec's human name (flag values, metric labels).
	Name() string
	// Encode appends the encoded src to dst.
	Encode(dst, src []byte) []byte
	// Decode decodes src, whose original form was rawLen bytes.
	Decode(src []byte, rawLen int) ([]byte, error)
}

// Well-known codec IDs. IDs are wire format: never renumber.
const (
	IDRaw          uint8 = 0 // identity
	IDDeltaVarint  uint8 = 1 // zigzag delta varint over 8-byte words
	IDDeltaVarint3 uint8 = 2 // zigzag delta varint over 4-byte words
	IDFloatShuffle uint8 = 3 // byte-plane transpose + LZ window matcher
)

// ErrCorrupt is wrapped by every decode failure: a frame that is truncated,
// bit-flipped, or structurally invalid. Storage classifies it as
// non-transient (retrying cannot fix bad bytes on disk).
var ErrCorrupt = errors.New("compress: corrupt frame")

// crcTable is the Castagnoli polynomial, matching the CRS file format.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ---- registry ----

var (
	regMu    sync.RWMutex
	byID     = map[uint8]Codec{}
	byName   = map[string]Codec{}
	regOrder []uint8
)

// Register adds a codec to the process-wide registry. Registering a
// duplicate ID or name panics: codec identity is wire format.
func Register(c Codec) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := byID[c.ID()]; dup {
		panic(fmt.Sprintf("compress: codec ID %d registered twice", c.ID()))
	}
	if _, dup := byName[c.Name()]; dup {
		panic(fmt.Sprintf("compress: codec name %q registered twice", c.Name()))
	}
	byID[c.ID()] = c
	byName[c.Name()] = c
	regOrder = append(regOrder, c.ID())
}

// ByID resolves a codec by its wire ID.
func ByID(id uint8) (Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := byID[id]
	return c, ok
}

// ByName resolves a codec by name ("raw", "delta64", "delta32", "fshuf").
func ByName(name string) (Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := byName[name]
	return c, ok
}

// Names lists the registered codec names in ID order (flag help text).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	ids := append([]uint8(nil), regOrder...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, byID[id].Name())
	}
	return out
}

// Mask returns the capability bitmask of all registered codecs with IDs < 8
// — the byte exchanged in the remote handshake.
func Mask() uint8 {
	regMu.RLock()
	defer regMu.RUnlock()
	var m uint8
	for id := range byID {
		if id < 8 {
			m |= 1 << id
		}
	}
	return m
}

// Default returns the codec the runtime uses when compression is enabled
// without an explicit choice: FloatShuffle, which wins on the float64-heavy
// payloads that dominate scratch and wire traffic and bails to raw
// elsewhere via EncodeAdaptive.
func Default() Codec { return floatShuffleCodec }

func init() {
	Register(Raw{})
	Register(DeltaVarint{Width: 8, id: IDDeltaVarint, name: "delta64"})
	Register(DeltaVarint{Width: 4, id: IDDeltaVarint3, name: "delta32"})
	Register(floatShuffleCodec)
}

// ---- Raw codec ----

// Raw is the identity codec: frame overhead only, no transform. It is the
// adaptive bail-out target and the negotiated floor between remote peers.
type Raw struct{}

// ID returns IDRaw.
func (Raw) ID() uint8 { return IDRaw }

// Name returns "raw".
func (Raw) Name() string { return "raw" }

// Encode appends src unchanged.
func (Raw) Encode(dst, src []byte) []byte { return append(dst, src...) }

// Decode verifies the length and returns src.
func (Raw) Decode(src []byte, rawLen int) ([]byte, error) {
	if len(src) != rawLen {
		return nil, fmt.Errorf("%w: raw payload is %d bytes, header says %d", ErrCorrupt, len(src), rawLen)
	}
	return append([]byte(nil), src...), nil
}

// ---- framed container ----

// Frame layout (little endian):
//
//	offset  size  field
//	0       4     magic "DOZ1"
//	4       1     codec ID
//	5       1     flags (reserved, 0)
//	6       8     original (decoded) length
//	14      4     CRC32-C of the original bytes
//	18      ...   codec payload
const (
	frameMagic     = "DOZ1"
	FrameHeaderLen = 18
)

// maxFrameRawLen bounds the decoded size a frame may claim, so a corrupt
// header cannot drive a multi-gigabyte allocation.
const maxFrameRawLen = 1 << 40

// EncodeFrame encodes src with c inside a self-describing frame.
func EncodeFrame(c Codec, src []byte) []byte {
	return AppendFrame(make([]byte, 0, FrameHeaderLen+len(src)/2+64), c, src)
}

// AppendFrame appends the frame encoding src with c to dst and returns the
// extended slice. Callers with a reusable destination buffer (the storage
// spill path, the wire encoder) avoid EncodeFrame's per-call allocation.
func AppendFrame(dst []byte, c Codec, src []byte) []byte {
	var hdr [FrameHeaderLen]byte
	copy(hdr[:], frameMagic)
	hdr[4] = c.ID()
	hdr[5] = 0
	binary.LittleEndian.PutUint64(hdr[6:], uint64(len(src)))
	binary.LittleEndian.PutUint32(hdr[14:], crc32.Checksum(src, crcTable))
	return c.Encode(append(dst, hdr[:]...), src)
}

// EncodeAdaptive encodes src with c but bails out to the Raw codec when the
// result saves less than ~10% (raw/compressed ratio below 1.1): random or
// already-dense blocks then cost one memcpy and 18 header bytes instead of
// a pointless decode on every future read. It returns the frame and the
// codec actually used.
func EncodeAdaptive(c Codec, src []byte) ([]byte, Codec) {
	return AppendFrameAdaptive(nil, c, src)
}

// AppendFrameAdaptive is EncodeAdaptive appending into dst. On bail-out the
// attempted frame is truncated in place and the raw frame written over it,
// so the bail-out path costs no second buffer.
func AppendFrameAdaptive(dst []byte, c Codec, src []byte) ([]byte, Codec) {
	if c == nil || c.ID() == IDRaw {
		return AppendFrame(dst, Raw{}, src), Raw{}
	}
	base := len(dst)
	out := AppendFrame(dst, c, src)
	// Keep the codec only when rawLen >= 1.1 * framedLen.
	if int64(len(src))*10 >= int64(len(out)-base)*11 {
		return out, c
	}
	return AppendFrame(out[:base], Raw{}, src), Raw{}
}

// DecodeFrame decodes a framed block, returning the original bytes and the
// codec that produced them. Every failure wraps ErrCorrupt.
func DecodeFrame(frame []byte) ([]byte, Codec, error) {
	if len(frame) < FrameHeaderLen {
		return nil, nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrCorrupt, len(frame), FrameHeaderLen)
	}
	if string(frame[:4]) != frameMagic {
		return nil, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, frame[:4])
	}
	if frame[5] != 0 {
		return nil, nil, fmt.Errorf("%w: unknown flags %#x", ErrCorrupt, frame[5])
	}
	rawLen := binary.LittleEndian.Uint64(frame[6:])
	if rawLen > maxFrameRawLen {
		return nil, nil, fmt.Errorf("%w: implausible original length %d", ErrCorrupt, rawLen)
	}
	c, ok := ByID(frame[4])
	if !ok {
		return nil, nil, fmt.Errorf("%w: unknown codec ID %d", ErrCorrupt, frame[4])
	}
	out, err := c.Decode(frame[FrameHeaderLen:], int(rawLen))
	if err != nil {
		return nil, c, fmt.Errorf("codec %s: %w", c.Name(), err)
	}
	if len(out) != int(rawLen) {
		return nil, c, fmt.Errorf("%w: codec %s produced %d bytes, header says %d", ErrCorrupt, c.Name(), len(out), rawLen)
	}
	want := binary.LittleEndian.Uint32(frame[14:])
	if got := crc32.Checksum(out, crcTable); got != want {
		return nil, c, fmt.Errorf("%w: codec %s CRC mismatch (frame %08x, decoded %08x)", ErrCorrupt, c.Name(), want, got)
	}
	return out, c, nil
}

// FrameCodec peeks at a frame's codec without decoding. It errors on
// anything shorter than a header or with a bad magic.
func FrameCodec(frame []byte) (Codec, error) {
	if len(frame) < FrameHeaderLen || string(frame[:4]) != frameMagic {
		return nil, fmt.Errorf("%w: not a frame", ErrCorrupt)
	}
	c, ok := ByID(frame[4])
	if !ok {
		return nil, fmt.Errorf("%w: unknown codec ID %d", ErrCorrupt, frame[4])
	}
	return c, nil
}
