package sparse

import (
	"fmt"
	"os"
	"path/filepath"
)

// GridPartition describes the K×K block decomposition of a square matrix
// used by the paper's iterated SpMV: sub-matrix A[u][v] covers rows
// [RowStart(u), RowStart(u+1)) and columns [RowStart(v), RowStart(v+1)).
// Row and column cuts coincide because the input/output vectors share the
// same partitioning.
type GridPartition struct {
	Dim int // global dimension (square)
	K   int // grid order
}

// NewGridPartition validates and returns a K×K partition of a dim×dim matrix.
func NewGridPartition(dim, k int) (GridPartition, error) {
	if dim <= 0 || k <= 0 {
		return GridPartition{}, fmt.Errorf("sparse: invalid partition dim=%d K=%d", dim, k)
	}
	if k > dim {
		return GridPartition{}, fmt.Errorf("sparse: K=%d exceeds dimension %d", k, dim)
	}
	return GridPartition{Dim: dim, K: k}, nil
}

// Start returns the first global index of part u (0 <= u <= K; Start(K)==Dim).
// Parts differ in size by at most one.
func (p GridPartition) Start(u int) int {
	if u < 0 || u > p.K {
		panic(fmt.Sprintf("sparse: part %d out of [0,%d]", u, p.K))
	}
	q, r := p.Dim/p.K, p.Dim%p.K
	if u <= r {
		return u * (q + 1)
	}
	return r*(q+1) + (u-r)*q
}

// Size returns the number of rows/cols in part u.
func (p GridPartition) Size(u int) int { return p.Start(u+1) - p.Start(u) }

// PartOf returns the part containing global index i.
func (p GridPartition) PartOf(i int) int {
	if i < 0 || i >= p.Dim {
		panic(fmt.Sprintf("sparse: index %d out of [0,%d)", i, p.Dim))
	}
	q, r := p.Dim/p.K, p.Dim%p.K
	cut := r * (q + 1)
	if i < cut {
		return i / (q + 1)
	}
	return r + (i-cut)/q
}

// Block extracts sub-matrix A[u][v] of m under partition p. Column indices
// are rebased to the block's local coordinates.
func Block(m *CSR, p GridPartition, u, v int) (*CSR, error) {
	if m.Rows != p.Dim || m.Cols != p.Dim {
		return nil, fmt.Errorf("sparse: matrix %dx%d does not match partition dim %d", m.Rows, m.Cols, p.Dim)
	}
	if u < 0 || u >= p.K || v < 0 || v >= p.K {
		return nil, fmt.Errorf("sparse: block (%d,%d) out of %dx%d grid", u, v, p.K, p.K)
	}
	r0, r1 := p.Start(u), p.Start(u+1)
	c0, c1 := p.Start(v), p.Start(v+1)
	b := &CSR{Rows: r1 - r0, Cols: c1 - c0, RowPtr: make([]int64, r1-r0+1)}
	for i := r0; i < r1; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c := int(m.ColIdx[k])
			if c < c0 {
				continue
			}
			if c >= c1 {
				break // columns are sorted
			}
			b.ColIdx = append(b.ColIdx, int32(c-c0))
			b.Val = append(b.Val, m.Val[k])
		}
		b.RowPtr[i-r0+1] = int64(len(b.Val))
	}
	return b, nil
}

// Assemble reverses Block: it stitches a K×K grid of blocks back into one
// matrix. Used by tests to verify partition round-trips.
func Assemble(p GridPartition, blocks [][]*CSR) (*CSR, error) {
	if len(blocks) != p.K {
		return nil, fmt.Errorf("sparse: %d block rows, want %d", len(blocks), p.K)
	}
	var ts []Triplet
	for u := 0; u < p.K; u++ {
		if len(blocks[u]) != p.K {
			return nil, fmt.Errorf("sparse: block row %d has %d blocks, want %d", u, len(blocks[u]), p.K)
		}
		for v := 0; v < p.K; v++ {
			b := blocks[u][v]
			if b.Rows != p.Size(u) || b.Cols != p.Size(v) {
				return nil, fmt.Errorf("sparse: block (%d,%d) is %dx%d, want %dx%d", u, v, b.Rows, b.Cols, p.Size(u), p.Size(v))
			}
			r0, c0 := p.Start(u), p.Start(v)
			for i := 0; i < b.Rows; i++ {
				for k := b.RowPtr[i]; k < b.RowPtr[i+1]; k++ {
					ts = append(ts, Triplet{r0 + i, c0 + int(b.ColIdx[k]), b.Val[k]})
				}
			}
		}
	}
	return FromTriplets(p.Dim, p.Dim, ts)
}

// BlockFileName returns the canonical file name for sub-matrix (u,v),
// matching the layout cmd/doocgen writes and the out-of-core runner reads.
func BlockFileName(u, v int) string { return fmt.Sprintf("A_%03d_%03d.crs", u, v) }

// WriteBlockFiles partitions m into a K×K grid and writes each block as a
// binary CRS file in dir, returning the per-block nnz grid.
func WriteBlockFiles(dir string, m *CSR, k int) ([][]int64, error) {
	p, err := NewGridPartition(m.Rows, k)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	nnz := make([][]int64, k)
	for u := 0; u < k; u++ {
		nnz[u] = make([]int64, k)
		for v := 0; v < k; v++ {
			b, err := Block(m, p, u, v)
			if err != nil {
				return nil, err
			}
			nnz[u][v] = b.NNZ()
			if err := WriteCRSFile(filepath.Join(dir, BlockFileName(u, v)), b); err != nil {
				return nil, err
			}
		}
	}
	return nnz, nil
}
