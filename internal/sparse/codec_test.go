package sparse

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestCRSRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 20)
		var buf bytes.Buffer
		if err := WriteCRS(&buf, m); err != nil {
			return false
		}
		got, err := ReadCRS(&buf)
		if err != nil {
			return false
		}
		if got.Rows != m.Rows || got.Cols != m.Cols || got.NNZ() != m.NNZ() {
			return false
		}
		for i := range m.RowPtr {
			if got.RowPtr[i] != m.RowPtr[i] {
				return false
			}
		}
		for i := range m.Val {
			if got.ColIdx[i] != m.ColIdx[i] || got.Val[i] != m.Val[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCRSFileBytesMatchesActualSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomCSR(rng, 30)
	var buf bytes.Buffer
	if err := WriteCRS(&buf, m); err != nil {
		t.Fatal(err)
	}
	want := FileBytes(m.Rows, m.NNZ())
	if int64(buf.Len()) != want {
		t.Fatalf("encoded %d bytes, FileBytes predicts %d", buf.Len(), want)
	}
}

func TestCRSDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomCSR(rng, 20)
	var buf bytes.Buffer
	if err := WriteCRS(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a bit in the middle of the payload.
	data[len(data)/2] ^= 0x40
	if _, err := ReadCRS(bytes.NewReader(data)); err == nil {
		t.Fatal("expected checksum error on corrupted payload")
	}
}

func TestCRSDetectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randomCSR(rng, 20)
	var buf bytes.Buffer
	if err := WriteCRS(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{4, HeaderBytes - 1, len(data) / 2, len(data) - 2} {
		if _, err := ReadCRS(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("expected error reading %d of %d bytes", cut, len(data))
		}
	}
}

func TestCRSRejectsBadMagic(t *testing.T) {
	data := append([]byte("NOTACRS!"), make([]byte, 64)...)
	if _, err := ReadCRS(bytes.NewReader(data)); err == nil {
		t.Fatal("expected error on bad magic")
	}
}

func TestCRSFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.crs")
	rng := rand.New(rand.NewSource(8))
	m := randomCSR(rng, 25)
	if err := WriteCRSFile(path, m); err != nil {
		t.Fatal(err)
	}
	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	got, err := ReadCRSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != m.NNZ() {
		t.Fatalf("NNZ = %d, want %d", got.NNZ(), m.NNZ())
	}
	rows, cols, nnz, err := ReadCRSHeader(path)
	if err != nil {
		t.Fatal(err)
	}
	if rows != m.Rows || cols != m.Cols || nnz != m.NNZ() {
		t.Fatalf("header = (%d,%d,%d), want (%d,%d,%d)", rows, cols, nnz, m.Rows, m.Cols, m.NNZ())
	}
}

func TestReadCRSFileMissing(t *testing.T) {
	if _, err := ReadCRSFile(filepath.Join(t.TempDir(), "nope.crs")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestWriteCRSRejectsInvalid(t *testing.T) {
	m := FromDense(2, 2, []float64{1, 2, 3, 4})
	m.ColIdx[0] = 99
	var buf bytes.Buffer
	if err := WriteCRS(&buf, m); err == nil {
		t.Fatal("expected error writing invalid matrix")
	}
}
