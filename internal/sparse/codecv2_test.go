package sparse

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

// TestCRS2RoundTripProperty mirrors the V1 property test: ReadCRS must
// auto-detect the V2 magic and reconstruct the matrix exactly.
func TestCRS2RoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 20)
		var buf bytes.Buffer
		if err := WriteCRS2(&buf, m); err != nil {
			return false
		}
		got, err := ReadCRS(&buf)
		if err != nil {
			return false
		}
		if got.Rows != m.Rows || got.Cols != m.Cols || got.NNZ() != m.NNZ() {
			return false
		}
		for i := range m.RowPtr {
			if got.RowPtr[i] != m.RowPtr[i] {
				return false
			}
		}
		for i := range m.Val {
			if got.ColIdx[i] != m.ColIdx[i] || got.Val[i] != m.Val[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// csrEqual reports exact equality of two matrices, including bit-identical
// values.
func csrEqual(a, b *CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.Val {
		if a.ColIdx[i] != b.ColIdx[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

// TestCRS2Shrinks checks the point of the format: a structured matrix's V2
// file must be meaningfully smaller than its V1 file.
func TestCRS2Shrinks(t *testing.T) {
	m, err := GapMatrix(GapGenConfig{Rows: 2000, Cols: 2000, D: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Physical matrix elements carry limited precision (CI Hamiltonian
	// entries repeat and truncate); quantize so the value section has the
	// byte structure FloatShuffle targets.
	for i, v := range m.Val {
		m.Val[i] = math.Round(v*1024) / 1024
	}
	var v1, v2 bytes.Buffer
	if err := WriteCRS(&v1, m); err != nil {
		t.Fatal(err)
	}
	if err := WriteCRS2(&v2, m); err != nil {
		t.Fatal(err)
	}
	if ratio := float64(v1.Len()) / float64(v2.Len()); ratio < 1.5 {
		t.Errorf("V2 ratio %.2f (V1 %d bytes, V2 %d), want >= 1.5", ratio, v1.Len(), v2.Len())
	}
}

// TestCRS2DetectsCorruptionAndTruncation flips and cuts a V2 file at many
// positions: the reader must error, never return a different matrix.
func TestCRS2DetectsCorruptionAndTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomCSR(rng, 30)
	var buf bytes.Buffer
	if err := WriteCRS2(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for pos := 0; pos < len(data); pos += 1 + len(data)/53 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x40
		got, err := ReadCRS(bytes.NewReader(mut))
		if err == nil && !csrEqual(got, m) {
			t.Fatalf("bit flip at %d returned a different matrix without error", pos)
		}
	}
	for _, cut := range []int{4, HeaderBytes - 1, HeaderBytes + 3, len(data) / 2, len(data) - 2} {
		if _, err := ReadCRS(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("expected error reading %d of %d bytes", cut, len(data))
		}
	}
}

// TestCRS2FileHelpers checks the atomic file writer and that both the
// generic file reader and the header probe accept a V2 file.
func TestCRS2FileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.crs2")
	rng := rand.New(rand.NewSource(8))
	m := randomCSR(rng, 25)
	if err := WriteCRS2File(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCRSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !csrEqual(got, m) {
		t.Fatal("file round trip mismatch")
	}
	rows, cols, nnz, err := ReadCRSHeader(path)
	if err != nil {
		t.Fatal(err)
	}
	if rows != m.Rows || cols != m.Cols || nnz != m.NNZ() {
		t.Fatalf("header probe = %d x %d nnz %d, want %d x %d nnz %d", rows, cols, nnz, m.Rows, m.Cols, m.NNZ())
	}
}
