// Package sparse provides the sparse linear-algebra substrate of the DOoC
// reproduction: CSR matrices, the binary CRS on-disk format used by the
// paper's out-of-core SpMV, the paper's random-gap matrix generator, a K×K
// grid partitioner, and parallel SpMV kernels.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a sparse matrix in Compressed Sparse Row format.
//
// RowPtr has Rows+1 entries; the column indices and values of row i live in
// ColIdx[RowPtr[i]:RowPtr[i+1]] and Val[RowPtr[i]:RowPtr[i+1]]. Column
// indices within a row are strictly increasing.
type CSR struct {
	Rows, Cols int
	RowPtr     []int64
	ColIdx     []int32
	Val        []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int64 {
	if len(m.RowPtr) == 0 {
		return 0
	}
	return m.RowPtr[m.Rows]
}

// Bytes returns the in-memory footprint of the matrix payload
// (row pointers + column indices + values).
func (m *CSR) Bytes() int64 {
	return int64(len(m.RowPtr))*8 + int64(len(m.ColIdx))*4 + int64(len(m.Val))*8
}

// Validate checks structural invariants and returns a descriptive error on
// the first violation.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("sparse: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("sparse: len(RowPtr)=%d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0]=%d, want 0", m.RowPtr[0])
	}
	nnz := m.RowPtr[m.Rows]
	if int64(len(m.ColIdx)) != nnz || int64(len(m.Val)) != nnz {
		return fmt.Errorf("sparse: len(ColIdx)=%d len(Val)=%d, want %d", len(m.ColIdx), len(m.Val), nnz)
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d: %d > %d", i, m.RowPtr[i], m.RowPtr[i+1])
		}
		prev := int32(-1)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c := m.ColIdx[k]
			if c < 0 || int(c) >= m.Cols {
				return fmt.Errorf("sparse: row %d col %d out of range [0,%d)", i, c, m.Cols)
			}
			if c <= prev {
				return fmt.Errorf("sparse: row %d columns not strictly increasing at %d", i, c)
			}
			prev = c
		}
	}
	return nil
}

// Triplet is one (row, col, value) entry, used to assemble matrices.
type Triplet struct {
	Row, Col int
	Val      float64
}

// FromTriplets assembles a CSR matrix from unordered triplets. Duplicate
// (row, col) entries are summed, matching standard assembly semantics.
func FromTriplets(rows, cols int, ts []Triplet) (*CSR, error) {
	for _, t := range ts {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			return nil, fmt.Errorf("sparse: triplet (%d,%d) out of %dx%d", t.Row, t.Col, rows, cols)
		}
	}
	sorted := append([]Triplet(nil), ts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int64, rows+1)}
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		m.ColIdx = append(m.ColIdx, int32(sorted[i].Col))
		m.Val = append(m.Val, v)
		m.RowPtr[sorted[i].Row+1]++
		i = j
	}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m, nil
}

// FromDense builds a CSR matrix from a dense row-major matrix, storing
// entries with |v| > 0.
func FromDense(rows, cols int, dense []float64) *CSR {
	if len(dense) != rows*cols {
		panic(fmt.Sprintf("sparse: dense length %d != %d*%d", len(dense), rows, cols))
	}
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int64, rows+1)}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := dense[i*cols+j]
			if v != 0 {
				m.ColIdx = append(m.ColIdx, int32(j))
				m.Val = append(m.Val, v)
			}
		}
		m.RowPtr[i+1] = int64(len(m.Val))
	}
	return m
}

// Dense expands the matrix into a dense row-major slice (test/debug helper;
// do not call on large matrices).
func (m *CSR) Dense() []float64 {
	out := make([]float64, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			out[i*m.Cols+int(m.ColIdx[k])] = m.Val[k]
		}
	}
	return out
}

// At returns the entry at (i, j), zero if not stored. Binary search per row.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch c := int(m.ColIdx[mid]); {
		case c == j:
			return m.Val[mid]
		case c < j:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// Transpose returns the transpose of m, also in CSR.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int64, m.Cols+1),
		ColIdx: make([]int32, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int64(nil), t.RowPtr[:m.Cols]...)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c := m.ColIdx[k]
			p := next[c]
			t.ColIdx[p] = int32(i)
			t.Val[p] = m.Val[k]
			next[c]++
		}
	}
	return t
}

// IsSymmetric reports whether the matrix equals its transpose within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	t := m.Transpose()
	if t.NNZ() != m.NNZ() {
		return false
	}
	for i := range m.Val {
		if t.ColIdx[i] != m.ColIdx[i] {
			return false
		}
		if math.Abs(t.Val[i]-m.Val[i]) > tol {
			return false
		}
	}
	for i := range m.RowPtr {
		if t.RowPtr[i] != m.RowPtr[i] {
			return false
		}
	}
	return true
}
