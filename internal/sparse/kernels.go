package sparse

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// MulVec computes y = A*x sequentially. len(x) must be A.Cols and len(y)
// must be A.Rows; y is fully overwritten.
func MulVec(a *CSR, x, y []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("sparse: MulVec shapes: A %dx%d, x %d, y %d", a.Rows, a.Cols, len(x), len(y)))
	}
	for i := 0; i < a.Rows; i++ {
		sum := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			sum += a.Val[k] * x[a.ColIdx[k]]
		}
		y[i] = sum
	}
}

// MulVecAdd computes y += A*x sequentially.
func MulVecAdd(a *CSR, x, y []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("sparse: MulVecAdd shapes: A %dx%d, x %d, y %d", a.Rows, a.Cols, len(x), len(y)))
	}
	for i := 0; i < a.Rows; i++ {
		sum := y[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			sum += a.Val[k] * x[a.ColIdx[k]]
		}
		y[i] = sum
	}
}

// MulVecParallel computes y = A*x using `workers` goroutines over row
// stripes. This is the "split a task to match the parallelism available on
// the node" operation the paper's local scheduler performs. workers <= 0
// means sequential.
func MulVecParallel(a *CSR, x, y []float64, workers int) {
	if workers <= 1 || a.Rows < 2*workers {
		MulVec(a, x, y)
		return
	}
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("sparse: MulVecParallel shapes: A %dx%d, x %d, y %d", a.Rows, a.Cols, len(x), len(y)))
	}
	// Stripe by nnz so workers get balanced work even on skewed rows.
	bounds := nnzBalancedStripes(a, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulVecRows(a, x, y[lo:hi], lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// nnzBalancedStripes returns workers+1 row boundaries such that each stripe
// holds roughly nnz/workers stored entries. Boundaries are located by binary
// search over the cumulative RowPtr — O(workers·log rows) instead of
// rescanning rows per worker. On pathological skew (e.g. one dense row
// holding most of the matrix) leading or trailing stripes may be empty;
// callers skip any stripe with lo >= hi.
func nnzBalancedStripes(a *CSR, workers int) []int {
	return nnzBalancedStripesInto(nil, a, workers)
}

// nnzBalancedStripesInto is the allocation-free variant used by the
// persistent pool: dst is reused when it has capacity.
func nnzBalancedStripesInto(dst []int, a *CSR, workers int) []int {
	if cap(dst) < workers+1 {
		dst = make([]int, workers+1)
	}
	bounds := dst[:workers+1]
	bounds[0] = 0
	bounds[workers] = a.Rows
	total := a.NNZ()
	for w := 1; w < workers; w++ {
		target := total * int64(w) / int64(workers)
		row := sort.Search(a.Rows, func(r int) bool { return a.RowPtr[r] >= target })
		if row < bounds[w-1] {
			row = bounds[w-1]
		}
		bounds[w] = row
	}
	return bounds
}

// Vector helpers used by the solvers and reduction tasks.

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("sparse: Axpy lengths %d vs %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Dot returns x · y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("sparse: Dot lengths %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Two-pass scaling is overkill for our well-scaled iterates; plain
	// sum-of-squares keeps summation order identical to the distributed path.
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Sum accumulates src into dst element-wise (dst += src), the paper's
// sub-vector reduction operation.
func Sum(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("sparse: Sum lengths %d vs %d", len(dst), len(src)))
	}
	for i := range src {
		dst[i] += src[i]
	}
}
