package sparse

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"unsafe"
)

// Bulk in-memory CRS decoding. ReadCRS is shaped for streaming from files
// (buffered reader, per-slab hashing); when a block already sits in memory —
// the common case for staged sub-matrices resident in the storage layer —
// that shape costs a 1 MiB buffer plus per-element conversion loops per
// decode. DecodeCRSBytes instead validates the CRC in one shot and bulk-
// copies each section into the typed slices, which on little-endian hardware
// compiles to three memcpys.

var crsLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

var crsCRCTable = crc32.MakeTable(crc32.Castagnoli)

// copyToInt64s fills dst from little-endian src bytes (len(src) == 8*len(dst)).
func copyToInt64s(dst []int64, src []byte) {
	if crsLittleEndian && len(dst) > 0 {
		db := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(dst))), 8*len(dst))
		copy(db, src)
		return
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(src[8*i:]))
	}
}

// copyToInt32s fills dst from little-endian src bytes (len(src) == 4*len(dst)).
func copyToInt32s(dst []int32, src []byte) {
	if crsLittleEndian && len(dst) > 0 {
		db := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(dst))), 4*len(dst))
		copy(db, src)
		return
	}
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(src[4*i:]))
	}
}

// copyToFloat64s fills dst from little-endian src bytes (len(src) == 8*len(dst)).
func copyToFloat64s(dst []float64, src []byte) {
	if crsLittleEndian && len(dst) > 0 {
		db := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(dst))), 8*len(dst))
		copy(db, src)
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
}

// DecodeCRSBytes decodes a binary CRS block held entirely in memory,
// verifying structure and CRC exactly like ReadCRS. V2 (section-compressed)
// blocks fall back to the streaming reader.
func DecodeCRSBytes(data []byte) (*CSR, error) {
	if len(data) < HeaderBytes+4 {
		return nil, fmt.Errorf("sparse: %d bytes is shorter than a CRS header", len(data))
	}
	switch string(data[:8]) {
	case crsMagic:
	case crsMagicV2:
		return ReadCRS(bytes.NewReader(data))
	default:
		return nil, fmt.Errorf("sparse: bad CRS magic %q", data[:8])
	}
	rows := int64(binary.LittleEndian.Uint64(data[8:]))
	cols := int64(binary.LittleEndian.Uint64(data[16:]))
	nnz := int64(binary.LittleEndian.Uint64(data[24:]))
	const maxDim = 1 << 40
	if rows < 0 || cols < 0 || nnz < 0 || rows > maxDim || cols > maxDim || nnz > maxDim {
		return nil, fmt.Errorf("sparse: implausible CRS shape rows=%d cols=%d nnz=%d", rows, cols, nnz)
	}
	if want := FileBytes(int(rows), nnz); int64(len(data)) != want {
		return nil, fmt.Errorf("sparse: CRS block is %d bytes, shape says %d", len(data), want)
	}
	body := len(data) - 4
	if got, want := binary.LittleEndian.Uint32(data[body:]), crc32.Checksum(data[:body], crsCRCTable); got != want {
		return nil, fmt.Errorf("sparse: CRS checksum mismatch: file=%08x computed=%08x", got, want)
	}
	m := &CSR{
		Rows:   int(rows),
		Cols:   int(cols),
		RowPtr: make([]int64, rows+1),
		ColIdx: make([]int32, nnz),
		Val:    make([]float64, nnz),
	}
	off := int64(HeaderBytes)
	copyToInt64s(m.RowPtr, data[off:off+8*(rows+1)])
	off += 8 * (rows + 1)
	copyToInt32s(m.ColIdx, data[off:off+4*nnz])
	off += 4 * nnz
	copyToFloat64s(m.Val, data[off:off+8*nnz])
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("sparse: invalid CRS payload: %w", err)
	}
	return m, nil
}
