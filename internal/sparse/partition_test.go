package sparse

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestGridPartitionBounds(t *testing.T) {
	p, err := NewGridPartition(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 10 = 4 + 3 + 3.
	sizes := []int{p.Size(0), p.Size(1), p.Size(2)}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	if p.Start(0) != 0 || p.Start(3) != 10 {
		t.Fatalf("Start bounds: %d %d", p.Start(0), p.Start(3))
	}
}

func TestGridPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(500)
		k := 1 + rng.Intn(dim)
		p, err := NewGridPartition(dim, k)
		if err != nil {
			return false
		}
		// Parts tile [0, dim) exactly, sizes differ by at most 1.
		total := 0
		minSz, maxSz := dim+1, 0
		for u := 0; u < k; u++ {
			sz := p.Size(u)
			if sz <= 0 {
				return false
			}
			total += sz
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		if total != dim || maxSz-minSz > 1 {
			return false
		}
		// PartOf is consistent with Start ranges.
		for trial := 0; trial < 20; trial++ {
			i := rng.Intn(dim)
			u := p.PartOf(i)
			if i < p.Start(u) || i >= p.Start(u+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestGridPartitionValidation(t *testing.T) {
	if _, err := NewGridPartition(0, 1); err == nil {
		t.Error("expected error for dim=0")
	}
	if _, err := NewGridPartition(5, 0); err == nil {
		t.Error("expected error for K=0")
	}
	if _, err := NewGridPartition(3, 4); err == nil {
		t.Error("expected error for K>dim")
	}
}

func TestBlockAssembleRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 2 + rng.Intn(40)
		k := 1 + rng.Intn(4)
		if k > dim {
			k = dim
		}
		var ts []Triplet
		for i := 0; i < dim*3; i++ {
			ts = append(ts, Triplet{rng.Intn(dim), rng.Intn(dim), rng.NormFloat64()})
		}
		m, err := FromTriplets(dim, dim, ts)
		if err != nil {
			return false
		}
		p, err := NewGridPartition(dim, k)
		if err != nil {
			return false
		}
		blocks := make([][]*CSR, k)
		var totalNNZ int64
		for u := 0; u < k; u++ {
			blocks[u] = make([]*CSR, k)
			for v := 0; v < k; v++ {
				b, err := Block(m, p, u, v)
				if err != nil {
					return false
				}
				if err := b.Validate(); err != nil {
					return false
				}
				totalNNZ += b.NNZ()
				blocks[u][v] = b
			}
		}
		if totalNNZ != m.NNZ() {
			return false
		}
		back, err := Assemble(p, blocks)
		if err != nil {
			return false
		}
		if back.NNZ() != m.NNZ() {
			return false
		}
		for i := range m.Val {
			if back.Val[i] != m.Val[i] || back.ColIdx[i] != m.ColIdx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBlockSpMVEqualsGlobalSpMV is the core correctness property behind the
// paper's distributed SpMV: summing per-block products equals the global
// product.
func TestBlockSpMVEqualsGlobalSpMV(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	dim, k := 37, 4
	m, err := GapMatrix(GapGenConfig{Rows: dim, Cols: dim, D: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewGridPartition(dim, k)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, dim)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, dim)
	MulVec(m, x, want)

	got := make([]float64, dim)
	for u := 0; u < k; u++ {
		yu := got[p.Start(u):p.Start(u+1)]
		for v := 0; v < k; v++ {
			b, err := Block(m, p, u, v)
			if err != nil {
				t.Fatal(err)
			}
			xv := x[p.Start(v):p.Start(v+1)]
			MulVecAdd(b, xv, yu)
		}
	}
	for i := range want {
		diff := want[i] - got[i]
		if diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestWriteBlockFiles(t *testing.T) {
	dir := t.TempDir()
	m, err := GapMatrix(GapGenConfig{Rows: 20, Cols: 20, D: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	nnz, err := WriteBlockFiles(dir, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for u := 0; u < 2; u++ {
		for v := 0; v < 2; v++ {
			total += nnz[u][v]
			path := filepath.Join(dir, BlockFileName(u, v))
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("missing block file: %v", err)
			}
			b, err := ReadCRSFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if b.NNZ() != nnz[u][v] {
				t.Fatalf("block (%d,%d) nnz %d, recorded %d", u, v, b.NNZ(), nnz[u][v])
			}
		}
	}
	if total != m.NNZ() {
		t.Fatalf("blocks hold %d nnz, matrix has %d", total, m.NNZ())
	}
}
