package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCRS: arbitrary bytes must never panic the binary CRS reader —
// they either decode to a valid matrix or return an error. (The storage
// layer feeds file contents straight into this path.)
func FuzzReadCRS(f *testing.F) {
	// Seed with a valid encoding and some corruptions of it.
	m := FromDense(3, 3, []float64{1, 0, 2, 0, 3, 0, 4, 0, 5})
	var buf bytes.Buffer
	if err := WriteCRS(&buf, m); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{0, 8, len(valid) / 2, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0xff
	f.Add(mut)
	f.Add([]byte("DOOCCRS1 garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCRS(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be structurally valid.
		if verr := got.Validate(); verr != nil {
			t.Fatalf("accepted invalid matrix: %v", verr)
		}
	})
}

// FuzzReadMatrixMarket: arbitrary text must never panic the .mtx parser.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 3.5\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 5 2\n")
	f.Fuzz(func(t *testing.T, src string) {
		got, err := ReadMatrixMarket(strings.NewReader(src))
		if err != nil {
			return
		}
		if verr := got.Validate(); verr != nil {
			t.Fatalf("accepted invalid matrix: %v", verr)
		}
	})
}
