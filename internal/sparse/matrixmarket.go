package sparse

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// MatrixMarket support: the de-facto interchange format for sparse
// matrices (SuiteSparse, the old NIST collection). Supporting it lets the
// tools stage *real* matrices — including published nuclear-structure and
// PDE matrices — instead of only synthetic ones.
//
// Supported header: "%%MatrixMarket matrix coordinate real|integer|pattern
// general|symmetric|skew-symmetric". Pattern entries get value 1; symmetric
// and skew-symmetric storage is expanded to full storage on read.

// ReadMatrixMarket parses a Matrix Market coordinate stream.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) != 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("sparse: bad MatrixMarket banner %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: only coordinate MatrixMarket is supported, got %q", header[2])
	}
	field, symmetry := header[3], header[4]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket field %q", field)
	}
	switch symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket symmetry %q", symmetry)
	}

	// Skip comments, read the size line.
	var rows, cols int
	var entries int64
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("sparse: MatrixMarket stream ended before size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &entries); err != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket size line %q: %w", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 || entries < 0 {
		return nil, fmt.Errorf("sparse: implausible MatrixMarket shape %dx%d nnz=%d", rows, cols, entries)
	}
	ts := make([]Triplet, 0, entries)
	for n := int64(0); n < entries; {
		if !sc.Scan() {
			return nil, fmt.Errorf("sparse: MatrixMarket stream ended after %d of %d entries", n, entries)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		want := 3
		if field == "pattern" {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("sparse: bad MatrixMarket entry %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row in %q: %w", line, err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad col in %q: %w", line, err)
		}
		v := 1.0
		if field != "pattern" {
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value in %q: %w", line, err)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of %dx%d", i, j, rows, cols)
		}
		ts = append(ts, Triplet{Row: i - 1, Col: j - 1, Val: v})
		switch symmetry {
		case "symmetric":
			if i != j {
				ts = append(ts, Triplet{Row: j - 1, Col: i - 1, Val: v})
			}
		case "skew-symmetric":
			if i != j {
				ts = append(ts, Triplet{Row: j - 1, Col: i - 1, Val: -v})
			}
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromTriplets(rows, cols, ts)
}

// ReadMatrixMarketFile reads a .mtx file.
func ReadMatrixMarketFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := ReadMatrixMarket(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// WriteMatrixMarket writes m in coordinate/real/general form.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("sparse: refusing to write invalid matrix: %w", err)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general")
	fmt.Fprintln(bw, "% written by dooc")
	fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.ColIdx[k]+1, m.Val[k])
		}
	}
	return bw.Flush()
}

// WriteMatrixMarketFile writes m to a .mtx file.
func WriteMatrixMarketFile(path string, m *CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteMatrixMarket(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
