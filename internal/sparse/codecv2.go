package sparse

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"

	"dooc/internal/compress"
)

// Section-compressed CRS file format (V2).
//
// The shape header is identical to V1 so ReadCRSHeader works on either
// version, but the three payload sections travel as self-describing
// compress frames, each chosen per-section: row pointers are monotone
// (delta64), column indices are sorted within rows (delta32), and values
// are float64 (fshuf). Each frame is adaptive, so an incompressible
// section degrades to raw plus 18 bytes rather than growing.
//
//	offset  size  field
//	0       8     magic "DOOCCRS2"
//	8       8     rows  (int64)
//	16      8     cols  (int64)
//	24      8     nnz   (int64)
//	32      8     row-pointer frame length, then the frame
//	...     8     column-index frame length, then the frame
//	...     8     value frame length, then the frame
//	last    4     CRC32 (Castagnoli) of everything before it
//
// The file CRC covers the compressed bytes (cheap, catches truncation);
// each frame additionally carries a CRC of its decoded bytes, so a decode
// can never silently return wrong data.
const crsMagicV2 = "DOOCCRS2"

// sectionCodec returns the preferred codec for section i (0 = row
// pointers, 1 = column indices, 2 = values).
func sectionCodec(i int) compress.Codec {
	ids := [3]uint8{compress.IDDeltaVarint, compress.IDDeltaVarint3, compress.IDFloatShuffle}
	c, ok := compress.ByID(ids[i])
	if !ok {
		return compress.Raw{}
	}
	return c
}

// sectionRawLen returns the decoded byte size of section i for a matrix
// with the given shape.
func sectionRawLen(i int, rows, nnz int64) int64 {
	switch i {
	case 0:
		return 8 * (rows + 1)
	case 1:
		return 4 * nnz
	default:
		return 8 * nnz
	}
}

// sectionBytes serializes section i of m into the little-endian layout the
// V1 format uses, which is what the section codecs are tuned for.
func sectionBytes(i int, m *CSR) []byte {
	switch i {
	case 0:
		out := make([]byte, 8*len(m.RowPtr))
		for j, p := range m.RowPtr {
			binary.LittleEndian.PutUint64(out[8*j:], uint64(p))
		}
		return out
	case 1:
		out := make([]byte, 4*len(m.ColIdx))
		for j, c := range m.ColIdx {
			binary.LittleEndian.PutUint32(out[4*j:], uint32(c))
		}
		return out
	default:
		out := make([]byte, 8*len(m.Val))
		for j, v := range m.Val {
			binary.LittleEndian.PutUint64(out[8*j:], math.Float64bits(v))
		}
		return out
	}
}

// WriteCRS2 writes m to w in section-compressed V2 format.
func WriteCRS2(w io.Writer, m *CSR) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("sparse: refusing to write invalid matrix: %w", err)
	}
	crc := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<20)
	if _, err := bw.WriteString(crsMagicV2); err != nil {
		return err
	}
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint64(hdr[0:], uint64(m.Rows))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(m.Cols))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(m.NNZ()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	var lenBuf [8]byte
	for i := 0; i < 3; i++ {
		frame, _ := compress.EncodeAdaptive(sectionCodec(i), sectionBytes(i, m))
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(frame)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := bw.Write(frame); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var crcBytes [4]byte
	binary.LittleEndian.PutUint32(crcBytes[:], crc.Sum32())
	_, err := w.Write(crcBytes[:])
	return err
}

// readCRS2 finishes a ReadCRS whose 32-byte header carried the V2 magic;
// hdr is already hashed into crc.
func readCRS2(br *bufio.Reader, crc hash.Hash32, hdr []byte) (*CSR, error) {
	rows := int64(binary.LittleEndian.Uint64(hdr[8:]))
	cols := int64(binary.LittleEndian.Uint64(hdr[16:]))
	nnz := int64(binary.LittleEndian.Uint64(hdr[24:]))
	const maxDim = 1 << 40
	if rows < 0 || cols < 0 || nnz < 0 || rows > maxDim || cols > maxDim || nnz > maxDim {
		return nil, fmt.Errorf("sparse: implausible CRS shape rows=%d cols=%d nnz=%d", rows, cols, nnz)
	}
	m := &CSR{
		Rows:   int(rows),
		Cols:   int(cols),
		RowPtr: make([]int64, rows+1),
		ColIdx: make([]int32, nnz),
		Val:    make([]float64, nnz),
	}
	var lenBuf [8]byte
	for i := 0; i < 3; i++ {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("sparse: short section %d length: %w", i, err)
		}
		crc.Write(lenBuf[:])
		frameLen := binary.LittleEndian.Uint64(lenBuf[:])
		rawLen := sectionRawLen(i, rows, nnz)
		// Adaptive encoding never produces a frame larger than raw plus
		// the frame header, so anything bigger is corruption, not data.
		if frameLen > uint64(rawLen)+compress.FrameHeaderLen {
			return nil, fmt.Errorf("sparse: section %d frame claims %d bytes for a %d-byte section", i, frameLen, rawLen)
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(br, frame); err != nil {
			return nil, fmt.Errorf("sparse: short section %d frame: %w", i, err)
		}
		crc.Write(frame)
		data, _, err := compress.DecodeFrame(frame)
		if err != nil {
			return nil, fmt.Errorf("sparse: section %d: %w", i, err)
		}
		if int64(len(data)) != rawLen {
			return nil, fmt.Errorf("sparse: section %d decoded to %d bytes, want %d", i, len(data), rawLen)
		}
		switch i {
		case 0:
			for j := range m.RowPtr {
				m.RowPtr[j] = int64(binary.LittleEndian.Uint64(data[8*j:]))
			}
		case 1:
			for j := range m.ColIdx {
				m.ColIdx[j] = int32(binary.LittleEndian.Uint32(data[4*j:]))
			}
		default:
			for j := range m.Val {
				m.Val[j] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*j:]))
			}
		}
	}
	want := crc.Sum32()
	crcBytes := make([]byte, 4)
	if _, err := io.ReadFull(br, crcBytes); err != nil {
		return nil, fmt.Errorf("sparse: missing CRS checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(crcBytes); got != want {
		return nil, fmt.Errorf("sparse: CRS checksum mismatch: file=%08x computed=%08x", got, want)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("sparse: invalid CRS payload: %w", err)
	}
	return m, nil
}

// WriteCRS2File writes m to path atomically in V2 format.
func WriteCRS2File(path string, m *CSR) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteCRS2(f, m); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
