package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCSR builds a random valid matrix for property tests.
func randomCSR(rng *rand.Rand, maxDim int) *CSR {
	rows := 1 + rng.Intn(maxDim)
	cols := 1 + rng.Intn(maxDim)
	var ts []Triplet
	n := rng.Intn(rows * cols)
	for i := 0; i < n; i++ {
		ts = append(ts, Triplet{rng.Intn(rows), rng.Intn(cols), rng.NormFloat64()})
	}
	m, err := FromTriplets(rows, cols, ts)
	if err != nil {
		panic(err)
	}
	return m
}

func TestFromTripletsBasic(t *testing.T) {
	m, err := FromTriplets(2, 3, []Triplet{{0, 1, 2.5}, {1, 0, -1}, {0, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 1); got != 2.5 {
		t.Errorf("At(0,1) = %v, want 2.5", got)
	}
	if got := m.At(1, 0); got != -1 {
		t.Errorf("At(1,0) = %v, want -1", got)
	}
	if got := m.At(1, 2); got != 0 {
		t.Errorf("At(1,2) = %v, want 0", got)
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", m.NNZ())
	}
}

func TestFromTripletsSumsDuplicates(t *testing.T) {
	m, err := FromTriplets(1, 1, []Triplet{{0, 0, 1}, {0, 0, 2}, {0, 0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 0); got != 6 {
		t.Errorf("At(0,0) = %v, want 6", got)
	}
	if m.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1", m.NNZ())
	}
}

func TestFromTripletsRejectsOutOfRange(t *testing.T) {
	if _, err := FromTriplets(2, 2, []Triplet{{2, 0, 1}}); err == nil {
		t.Fatal("expected error for out-of-range row")
	}
	if _, err := FromTriplets(2, 2, []Triplet{{0, -1, 1}}); err == nil {
		t.Fatal("expected error for negative col")
	}
}

func TestDenseRoundTrip(t *testing.T) {
	d := []float64{1, 0, 2, 0, 0, 3}
	m := FromDense(2, 3, d)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	got := m.Dense()
	for i := range d {
		if got[i] != d[i] {
			t.Fatalf("Dense()[%d] = %v, want %v", i, got[i], d[i])
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := FromDense(2, 2, []float64{1, 2, 3, 4})
	m.ColIdx[1] = 9 // out of range
	if err := m.Validate(); err == nil {
		t.Fatal("expected validation error for out-of-range column")
	}
	m = FromDense(2, 2, []float64{1, 2, 3, 4})
	m.RowPtr[1] = 5 // non-monotone
	if err := m.Validate(); err == nil {
		t.Fatal("expected validation error for non-monotone RowPtr")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 12)
		tt := m.Transpose().Transpose()
		if tt.Rows != m.Rows || tt.Cols != m.Cols || tt.NNZ() != m.NNZ() {
			return false
		}
		for i := range m.Val {
			if tt.ColIdx[i] != m.ColIdx[i] || tt.Val[i] != m.Val[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomCSR(rng, 10)
	tr := m.Transpose()
	d := m.Dense()
	td := tr.Dense()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if d[i*m.Cols+j] != td[j*tr.Cols+i] {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	sym, err := FromTriplets(3, 3, []Triplet{{0, 1, 2}, {1, 0, 2}, {2, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !sym.IsSymmetric(0) {
		t.Error("symmetric matrix reported as asymmetric")
	}
	asym, err := FromTriplets(3, 3, []Triplet{{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if asym.IsSymmetric(0) {
		t.Error("asymmetric matrix reported as symmetric")
	}
	rect := FromDense(2, 3, make([]float64, 6))
	if rect.IsSymmetric(0) {
		t.Error("rectangular matrix reported as symmetric")
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 15)
		x := make([]float64, m.Cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, m.Rows)
		MulVec(m, x, y)
		d := m.Dense()
		for i := 0; i < m.Rows; i++ {
			want := 0.0
			for j := 0; j < m.Cols; j++ {
				want += d[i*m.Cols+j] * x[j]
			}
			if math.Abs(y[i]-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, workers := range []int{1, 2, 3, 4, 8} {
		m := randomCSR(rng, 200)
		x := make([]float64, m.Cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		seq := make([]float64, m.Rows)
		par := make([]float64, m.Rows)
		MulVec(m, x, seq)
		MulVecParallel(m, x, par, workers)
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("workers=%d: par[%d]=%v seq=%v", workers, i, par[i], seq[i])
			}
		}
	}
}

func TestMulVecAdd(t *testing.T) {
	m := FromDense(2, 2, []float64{1, 2, 3, 4})
	x := []float64{1, 1}
	y := []float64{10, 20}
	MulVecAdd(m, x, y)
	if y[0] != 13 || y[1] != 27 {
		t.Fatalf("y = %v, want [13 27]", y)
	}
}

func TestMulVecShapePanics(t *testing.T) {
	m := FromDense(2, 2, []float64{1, 2, 3, 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MulVec(m, make([]float64, 3), make([]float64, 2))
}

func TestNNZBalancedStripesCoverAllRows(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 50)
		w := 1 + rng.Intn(8)
		b := nnzBalancedStripes(m, w)
		if b[0] != 0 || b[w] != m.Rows {
			return false
		}
		for i := 0; i < w; i++ {
			if b[i] > b[i+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorOps(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	Axpy(2, x, y)
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Fatalf("Axpy: y = %v", y)
	}
	if got := Dot(x, []float64{1, 1, 1}); got != 6 {
		t.Fatalf("Dot = %v, want 6", got)
	}
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	Scale(0.5, x)
	if x[0] != 0.5 || x[2] != 1.5 {
		t.Fatalf("Scale: x = %v", x)
	}
	dst := []float64{1, 1}
	Sum(dst, []float64{2, 3})
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("Sum: dst = %v", dst)
	}
}

func TestBytesAccounting(t *testing.T) {
	m := FromDense(2, 2, []float64{1, 0, 0, 2})
	// RowPtr: 3*8 + ColIdx: 2*4 + Val: 2*8 = 48.
	if got := m.Bytes(); got != 48 {
		t.Fatalf("Bytes = %d, want 48", got)
	}
}
