package sparse

import (
	"math"
	"testing"
)

func TestGapMatrixDeterministic(t *testing.T) {
	cfg := GapGenConfig{Rows: 50, Cols: 80, D: 4, Seed: 123}
	a, err := GapMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GapMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != b.NNZ() {
		t.Fatalf("same seed produced different nnz: %d vs %d", a.NNZ(), b.NNZ())
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] || a.ColIdx[i] != b.ColIdx[i] {
			t.Fatal("same seed produced different matrices")
		}
	}
}

func TestGapMatrixValid(t *testing.T) {
	for _, d := range []int{1, 2, 5, 20} {
		m, err := GapMatrix(GapGenConfig{Rows: 40, Cols: 100, D: d, Seed: int64(d)})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
	}
}

func TestGapMatrixDensityMatchesExpectation(t *testing.T) {
	// With gaps uniform on [1, 2d], mean gap is d+0.5, so a row of C columns
	// carries about C/(d+0.5) nonzeros. Check within 10% on a large matrix.
	cfg := GapGenConfig{Rows: 400, Cols: 2000, D: 7, Seed: 99}
	m, err := GapMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(cfg.ExpectedNNZ())
	got := float64(m.NNZ())
	if math.Abs(got-want)/want > 0.10 {
		t.Fatalf("nnz = %v, expected about %v", got, want)
	}
}

func TestDForTargetNNZInvertsExpectation(t *testing.T) {
	rows, cols := 300, 3000
	for _, target := range []int64{5000, 20000, 90000} {
		d := DForTargetNNZ(rows, cols, target)
		if d < 1 {
			t.Fatalf("d = %d", d)
		}
		m, err := GapMatrix(GapGenConfig{Rows: rows, Cols: cols, D: d, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		got := float64(m.NNZ())
		if math.Abs(got-float64(target))/float64(target) > 0.25 {
			t.Errorf("target %d, d=%d produced %v nnz", target, d, got)
		}
	}
}

func TestGapMatrixSymmetric(t *testing.T) {
	m, err := GapMatrix(GapGenConfig{Rows: 60, Cols: 60, D: 3, Seed: 11, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.IsSymmetric(0) {
		t.Fatal("symmetric generator produced asymmetric matrix")
	}
	// Diagonal fully populated.
	for i := 0; i < m.Rows; i++ {
		if m.At(i, i) == 0 {
			t.Fatalf("zero diagonal at %d", i)
		}
	}
}

func TestGapMatrixValidation(t *testing.T) {
	if _, err := GapMatrix(GapGenConfig{Rows: 0, Cols: 5, D: 1}); err == nil {
		t.Error("expected error for zero rows")
	}
	if _, err := GapMatrix(GapGenConfig{Rows: 5, Cols: 5, D: 0}); err == nil {
		t.Error("expected error for d=0")
	}
	if _, err := GapMatrix(GapGenConfig{Rows: 4, Cols: 5, D: 1, Symmetric: true}); err == nil {
		t.Error("expected error for non-square symmetric request")
	}
}

func TestSummarize(t *testing.T) {
	m := FromDense(3, 3, []float64{
		1, 1, 1,
		0, 0, 0,
		1, 0, 0,
	})
	s := Summarize(m)
	if s.NNZ != 4 || s.MinPerRow != 0 || s.MaxPerRow != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.AvgPerRow-4.0/3.0) > 1e-15 {
		t.Fatalf("avg = %v", s.AvgPerRow)
	}
}
