package sparse

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// randomCSR builds a random rows x cols matrix; trial%7 == 0 inserts
// alternating empty rows, matching the parallel-fuzz generator.
func randomPoolCSR(t *testing.T, rng *rand.Rand, rows, cols, trial int) *CSR {
	t.Helper()
	density := rng.Float64() * 0.3
	var ts []Triplet
	for i := 0; i < rows; i++ {
		if trial%7 == 0 && i%2 == 0 {
			continue
		}
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				ts = append(ts, Triplet{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	a, err := FromTriplets(rows, cols, ts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func bitsEqual(t *testing.T, tag string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s element %d: got %v want %v", tag, i, got[i], want[i])
		}
	}
}

// TestNnzBalancedStripesDenseRow is the regression test for the
// sort.Search rewrite: a single dense row holding every stored entry must
// yield empty leading/trailing stripes (tolerated, skipped by callers)
// while still covering all nnz exactly once and keeping boundaries
// monotone.
func TestNnzBalancedStripesDenseRow(t *testing.T) {
	for _, denseRow := range []int{0, 7, 15} {
		var ts []Triplet
		for j := 0; j < 200; j++ {
			ts = append(ts, Triplet{Row: denseRow, Col: j % 16, Val: float64(j + 1)})
		}
		a, err := FromTriplets(16, 16, ts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 4, 8} {
			bounds := stripesCoverRows(t, a, workers)
			covered := int64(0)
			owners := 0
			for w := 0; w < workers; w++ {
				covered += int64(a.RowPtr[bounds[w+1]] - a.RowPtr[bounds[w]])
				if bounds[w] <= denseRow && denseRow < bounds[w+1] {
					owners++
				}
			}
			if covered != a.NNZ() {
				t.Fatalf("dense row %d, %d workers: stripes cover %d nnz, want %d", denseRow, workers, covered, a.NNZ())
			}
			if owners != 1 {
				t.Fatalf("dense row %d owned by %d stripes, want 1 (bounds %v)", denseRow, owners, bounds)
			}
		}
	}
}

// TestNnzBalancedStripesIntoReuse checks the allocation-free variant reuses
// a caller buffer and agrees with the allocating form.
func TestNnzBalancedStripesIntoReuse(t *testing.T) {
	a, err := FromTriplets(12, 12, []Triplet{{0, 0, 1}, {3, 3, 2}, {7, 1, 3}, {11, 4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]int, 16)
	got := nnzBalancedStripesInto(scratch, a, 5)
	want := nnzBalancedStripes(a, 5)
	if &got[0] != &scratch[0] {
		t.Fatal("nnzBalancedStripesInto did not reuse the provided buffer")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds differ at %d: got %v want %v", i, got, want)
		}
	}
}

// TestPoolMulVecFuzzEquivalence checks the persistent pool's dispatch (all
// worker widths, reused across trials) against sequential MulVec
// bit-for-bit.
func TestPoolMulVecFuzzEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pools := make([]*Pool, 0, 8)
	for w := 1; w <= 8; w++ {
		p := NewPool(w)
		defer p.Close()
		pools = append(pools, p)
	}
	for trial := 0; trial < 40; trial++ {
		rows := 1 + rng.Intn(64)
		cols := 1 + rng.Intn(64)
		a := randomPoolCSR(t, rng, rows, cols, trial)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, rows)
		MulVec(a, x, want)
		for _, p := range pools {
			got := make([]float64, rows)
			for i := range got {
				got[i] = math.NaN()
			}
			p.MulVec(a, x, got)
			bitsEqual(t, "Pool.MulVec", got, want)
		}
	}
}

// TestMulVecFusedFuzzEquivalence proves MulVecDot and MulVecAxpyDot are
// bit-identical to the composed MulVecParallel + Dot + Axpy reference
// across random square systems, pool widths 1..8, the nil-pool package
// functions, and the empty-matrix edge.
func TestMulVecFusedFuzzEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pools := []*Pool{nil}
	for w := 1; w <= 8; w++ {
		p := NewPool(w)
		defer p.Close()
		pools = append(pools, p)
	}
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(96)
		var a *CSR
		if trial == 3 {
			// Empty-matrix edge: square, zero stored entries.
			empty, err := FromTriplets(n, n, nil)
			if err != nil {
				t.Fatal(err)
			}
			a = empty
		} else {
			a = randomPoolCSR(t, rng, n, n, trial)
		}
		x := make([]float64, n)
		prev := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			prev[i] = rng.NormFloat64()
		}
		beta := rng.NormFloat64()

		for pi, p := range pools {
			workers := p.Workers()

			// Composed reference, built with the public kernels exactly as
			// lanczos.Solve composes them.
			want := make([]float64, n)
			MulVecParallel(a, x, want, workers)
			alphaWant := Dot(want, x)

			got := make([]float64, n)
			for i := range got {
				got[i] = math.NaN()
			}
			var alpha float64
			if p == nil {
				alpha = MulVecDot(a, x, got)
			} else {
				alpha = p.MulVecDot(a, x, got)
			}
			if math.Float64bits(alpha) != math.Float64bits(alphaWant) {
				t.Fatalf("trial %d pool %d: MulVecDot alpha %v want %v", trial, pi, alpha, alphaWant)
			}
			bitsEqual(t, "MulVecDot y", got, want)

			// Three-term update, with and without the prev vector.
			for _, withPrev := range []bool{false, true} {
				pv := prev
				if !withPrev {
					pv = nil
				}
				wantW := make([]float64, n)
				MulVecParallel(a, x, wantW, workers)
				aW := Dot(wantW, x)
				Axpy(-aW, x, wantW)
				if withPrev {
					Axpy(-beta, prev, wantW)
				}

				gotW := make([]float64, n)
				for i := range gotW {
					gotW[i] = math.NaN()
				}
				var aG float64
				if p == nil {
					aG = MulVecAxpyDot(a, x, pv, beta, gotW)
				} else {
					aG = p.MulVecAxpyDot(a, x, pv, beta, gotW)
				}
				if math.Float64bits(aG) != math.Float64bits(aW) {
					t.Fatalf("trial %d pool %d prev=%v: alpha %v want %v", trial, pi, withPrev, aG, aW)
				}
				bitsEqual(t, "MulVecAxpyDot y", gotW, wantW)
			}
		}
	}
}

// TestMulVecBlockedFuzzEquivalence forces the column-tiled traversal (tile
// width shrunk so small matrices tile) and checks it bit-identical to
// MulVec, both through the kernel directly and through the pool dispatch.
func TestMulVecBlockedFuzzEquivalence(t *testing.T) {
	saved := colTileFloats
	colTileFloats = 8
	defer func() { colTileFloats = saved }()

	rng := rand.New(rand.NewSource(45))
	p := NewPool(4)
	defer p.Close()
	for trial := 0; trial < 40; trial++ {
		rows := 1 + rng.Intn(48)
		cols := 9 + rng.Intn(80) // always wider than one tile
		a := randomPoolCSR(t, rng, rows, cols, trial)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, rows)
		MulVec(a, x, want)

		got := make([]float64, rows)
		for i := range got {
			got[i] = math.NaN()
		}
		mulVecRowsBlocked(a, x, got, 0, rows, make([]int64, rows))
		bitsEqual(t, "mulVecRowsBlocked", got, want)

		for i := range got {
			got[i] = math.NaN()
		}
		p.MulVec(a, x, got) // dispatch picks blocked iff dense enough; either way bits match
		bitsEqual(t, "Pool.MulVec tiled", got, want)
	}

	// Dispatch accounting: a matrix dense enough for the heuristic must be
	// counted as a blocked dispatch.
	var ts []Triplet
	for i := 0; i < 16; i++ {
		for j := 0; j < 64; j += 2 {
			ts = append(ts, Triplet{Row: i, Col: j, Val: float64(i*64 + j)})
		}
	}
	dense, err := FromTriplets(16, 64, ts)
	if err != nil {
		t.Fatal(err)
	}
	if !useBlockedTraversal(dense) {
		t.Fatal("dense wide matrix should take the blocked traversal")
	}
}

// TestMulVecRowsPartial checks the exported row-range kernel against the
// matching slice of a full MulVec.
func TestMulVecRowsPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	a := randomPoolCSR(t, rng, 37, 23, 1)
	x := make([]float64, 23)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, 37)
	MulVec(a, x, want)
	for _, rr := range [][2]int{{0, 37}, {0, 0}, {5, 9}, {3, 36}, {36, 37}, {0, 4}} {
		lo, hi := rr[0], rr[1]
		got := make([]float64, hi-lo)
		for i := range got {
			got[i] = math.NaN()
		}
		MulVecRows(a, x, got, lo, hi)
		bitsEqual(t, "MulVecRows", got, want[lo:hi])
	}
}

// TestPoolConcurrentCallers hammers one pool from several goroutines; the
// dispatch lock must serialize them without corrupting results (run under
// -race in CI).
func TestPoolConcurrentCallers(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a := randomPoolCSR(t, rng, 200, 200, 1)
	x := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, 200)
	MulVec(a, x, want)
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			y := make([]float64, 200)
			for it := 0; it < 50; it++ {
				p.MulVec(a, x, y)
				for i := range want {
					if math.Float64bits(y[i]) != math.Float64bits(want[i]) {
						t.Errorf("concurrent caller diverged at row %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestPoolCloseIdempotent ensures Close is safe on nil pools and called
// twice.
func TestPoolCloseIdempotent(t *testing.T) {
	var nilPool *Pool
	nilPool.Close() // must not panic
	p := NewPool(3)
	p.Close()
	p.Close()
}

// BenchmarkMulVecFused measures the fused SpMV + dot + double-AXPY Lanczos
// update; SetBytes counts the matrix stream so go test -bench reports GB/s.
func BenchmarkMulVecFused(b *testing.B) {
	m, err := GapMatrix(GapGenConfig{Rows: 4096, Cols: 4096, D: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, m.Cols)
	prev := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = float64(i%17) * 0.25
		prev[i] = float64(i%13) * 0.5
	}
	p := NewPool(4)
	defer p.Close()
	b.SetBytes(m.Bytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MulVecAxpyDot(m, x, prev, 0.5, y)
	}
}

// BenchmarkMulVecBlocked exercises the cache-blocked traversal on a matrix
// whose input vector (64Ki columns = 512 KiB) outgrows one L2 tile.
func BenchmarkMulVecBlocked(b *testing.B) {
	m, err := GapMatrix(GapGenConfig{Rows: 4096, Cols: 65536, D: 128, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if !useBlockedTraversal(m) {
		b.Fatal("benchmark matrix does not trigger the blocked traversal")
	}
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = float64(i%17) * 0.25
	}
	p := NewPool(4)
	defer p.Close()
	b.SetBytes(m.Bytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MulVec(m, x, y)
	}
}
