package sparse

import (
	"fmt"
	"math/rand"
)

// GapGenConfig configures the paper's synthetic matrix generator
// (Section V): within each row, the separation between two consecutive
// nonzero entries is uniformly distributed in [1:2d], so a row of length
// `cols` carries about cols/(d+0.5) nonzeros in expectation. d is chosen to
// yield a target nnz count.
type GapGenConfig struct {
	Rows, Cols int
	// D is the gap parameter d. Gaps are uniform on [1, 2d].
	D int
	// Seed makes generation deterministic and reproducible.
	Seed int64
	// Symmetric, when set and Rows==Cols, mirrors the strictly-upper pattern
	// into the lower triangle so the result is symmetric (as the nuclear
	// Hamiltonians in the paper are). The diagonal is fully populated to keep
	// the matrix well conditioned for iterative solvers.
	Symmetric bool
}

// ExpectedNNZ estimates the nonzero count the generator will produce.
func (c GapGenConfig) ExpectedNNZ() int64 {
	perRow := float64(c.Cols) / (float64(c.D) + 0.5)
	return int64(perRow * float64(c.Rows))
}

// DForTargetNNZ returns the gap parameter d that yields approximately
// `target` nonzeros in a rows×cols matrix, the paper's calibration rule
// ("d is chosen to yield a certain number of total non-zero elements").
func DForTargetNNZ(rows, cols int, target int64) int {
	if target <= 0 {
		return cols // effectively empty rows
	}
	perRow := float64(target) / float64(rows)
	d := int(float64(cols)/perRow - 0.5)
	if d < 1 {
		d = 1
	}
	return d
}

// GapMatrix generates a random sparse matrix using the gap scheme. Values
// are uniform on [-1, 1).
func GapMatrix(cfg GapGenConfig) (*CSR, error) {
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		return nil, fmt.Errorf("sparse: gap generator needs positive dims, got %dx%d", cfg.Rows, cfg.Cols)
	}
	if cfg.D < 1 {
		return nil, fmt.Errorf("sparse: gap parameter d=%d must be >= 1", cfg.D)
	}
	if cfg.Symmetric && cfg.Rows != cfg.Cols {
		return nil, fmt.Errorf("sparse: symmetric generation needs a square matrix, got %dx%d", cfg.Rows, cfg.Cols)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	if !cfg.Symmetric {
		m := &CSR{Rows: cfg.Rows, Cols: cfg.Cols, RowPtr: make([]int64, cfg.Rows+1)}
		for i := 0; i < cfg.Rows; i++ {
			// First nonzero lands after a random offset so column coverage is
			// uniform; subsequent gaps are uniform on [1, 2d].
			col := rng.Intn(cfg.D) // offset in [0, d)
			for col < cfg.Cols {
				m.ColIdx = append(m.ColIdx, int32(col))
				m.Val = append(m.Val, 2*rng.Float64()-1)
				col += 1 + rng.Intn(2*cfg.D)
			}
			m.RowPtr[i+1] = int64(len(m.Val))
		}
		return m, nil
	}
	// Symmetric: generate strictly-upper entries by the gap scheme, mirror,
	// and add a diagonal.
	var ts []Triplet
	for i := 0; i < cfg.Rows; i++ {
		ts = append(ts, Triplet{i, i, 2 + rng.Float64()}) // diagonally dominant-ish
		col := i + 1 + rng.Intn(cfg.D)
		for col < cfg.Cols {
			v := 2*rng.Float64() - 1
			ts = append(ts, Triplet{i, col, v}, Triplet{col, i, v})
			col += 1 + rng.Intn(2*cfg.D)
		}
	}
	return FromTriplets(cfg.Rows, cfg.Cols, ts)
}

// Stats summarizes a matrix for reporting.
type Stats struct {
	Rows, Cols int
	NNZ        int64
	AvgPerRow  float64
	MinPerRow  int64
	MaxPerRow  int64
	Bytes      int64
}

// Summarize computes row-population statistics for m.
func Summarize(m *CSR) Stats {
	s := Stats{Rows: m.Rows, Cols: m.Cols, NNZ: m.NNZ(), Bytes: m.Bytes()}
	if m.Rows == 0 {
		return s
	}
	s.MinPerRow = int64(m.Cols) + 1
	for i := 0; i < m.Rows; i++ {
		n := m.RowPtr[i+1] - m.RowPtr[i]
		if n < s.MinPerRow {
			s.MinPerRow = n
		}
		if n > s.MaxPerRow {
			s.MaxPerRow = n
		}
	}
	s.AvgPerRow = float64(s.NNZ) / float64(m.Rows)
	return s
}
