package sparse

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Binary CRS file format.
//
// The paper stores every sub-matrix "in a separate file in binary Compressed
// Row Storage (CRS) format". We use a little-endian layout with a small
// header and a CRC so that truncated or corrupted files are detected rather
// than silently mis-multiplied:
//
//	offset  size  field
//	0       8     magic "DOOCCRS1"
//	8       8     rows  (int64)
//	16      8     cols  (int64)
//	24      8     nnz   (int64)
//	32      8*(rows+1)  row pointers (int64)
//	...     4*nnz       column indices (int32)
//	...     8*nnz       values (float64)
//	last    4     CRC32 (Castagnoli) of everything before it
const crsMagic = "DOOCCRS1"

// HeaderBytes is the size of the fixed CRS header.
const HeaderBytes = 32

// FileBytes returns the exact on-disk size of a CRS file with the given
// shape, including header and trailing CRC.
func FileBytes(rows int, nnz int64) int64 {
	return HeaderBytes + 8*int64(rows+1) + 12*nnz + 4
}

// WriteCRS writes m to w in binary CRS format.
func WriteCRS(w io.Writer, m *CSR) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("sparse: refusing to write invalid matrix: %w", err)
	}
	crc := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<20)
	if _, err := bw.WriteString(crsMagic); err != nil {
		return err
	}
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint64(hdr[0:], uint64(m.Rows))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(m.Cols))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(m.NNZ()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	// Encode in slabs: per-element writes would bottleneck the I/O filters.
	const slabElems = 64 << 10
	slab := make([]byte, 8*slabElems)
	for off := 0; off < len(m.RowPtr); off += slabElems {
		end := min(off+slabElems, len(m.RowPtr))
		for i, p := range m.RowPtr[off:end] {
			binary.LittleEndian.PutUint64(slab[8*i:], uint64(p))
		}
		if _, err := bw.Write(slab[:8*(end-off)]); err != nil {
			return err
		}
	}
	for off := 0; off < len(m.ColIdx); off += slabElems {
		end := min(off+slabElems, len(m.ColIdx))
		for i, c := range m.ColIdx[off:end] {
			binary.LittleEndian.PutUint32(slab[4*i:], uint32(c))
		}
		if _, err := bw.Write(slab[:4*(end-off)]); err != nil {
			return err
		}
	}
	for off := 0; off < len(m.Val); off += slabElems {
		end := min(off+slabElems, len(m.Val))
		for i, v := range m.Val[off:end] {
			binary.LittleEndian.PutUint64(slab[8*i:], math.Float64bits(v))
		}
		if _, err := bw.Write(slab[:8*(end-off)]); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// CRC of all bytes written so far, appended raw (not part of its own sum).
	var crcBytes [4]byte
	binary.LittleEndian.PutUint32(crcBytes[:], crc.Sum32())
	_, err := w.Write(crcBytes[:])
	return err
}

// ReadCRS reads a binary CRS matrix from r, verifying structure and CRC.
//
// The CRC is computed over exactly the bytes consumed before the trailing
// checksum (a bufio read-ahead must not contaminate the sum, so we hash the
// bytes explicitly rather than tee the underlying reader).
func ReadCRS(r io.Reader) (*CSR, error) {
	crc := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	br := bufio.NewReaderSize(r, 1<<20)
	hdr := make([]byte, HeaderBytes)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("sparse: short CRS header: %w", err)
	}
	crc.Write(hdr)
	switch string(hdr[:8]) {
	case crsMagic:
	case crsMagicV2:
		return readCRS2(br, crc, hdr)
	default:
		return nil, fmt.Errorf("sparse: bad CRS magic %q", hdr[:8])
	}
	rows := int64(binary.LittleEndian.Uint64(hdr[8:]))
	cols := int64(binary.LittleEndian.Uint64(hdr[16:]))
	nnz := int64(binary.LittleEndian.Uint64(hdr[24:]))
	const maxDim = 1 << 40
	if rows < 0 || cols < 0 || nnz < 0 || rows > maxDim || cols > maxDim || nnz > maxDim {
		return nil, fmt.Errorf("sparse: implausible CRS shape rows=%d cols=%d nnz=%d", rows, cols, nnz)
	}
	m := &CSR{
		Rows:   int(rows),
		Cols:   int(cols),
		RowPtr: make([]int64, rows+1),
		ColIdx: make([]int32, nnz),
		Val:    make([]float64, nnz),
	}
	// Decode in slabs; each slab is hashed after the read so the CRC covers
	// exactly the consumed payload.
	const slabElems = 64 << 10
	slab := make([]byte, 8*slabElems)
	for off := 0; off < len(m.RowPtr); off += slabElems {
		end := min(off+slabElems, len(m.RowPtr))
		chunk := slab[:8*(end-off)]
		if _, err := io.ReadFull(br, chunk); err != nil {
			return nil, fmt.Errorf("sparse: short row pointers: %w", err)
		}
		crc.Write(chunk)
		for i := off; i < end; i++ {
			m.RowPtr[i] = int64(binary.LittleEndian.Uint64(chunk[8*(i-off):]))
		}
	}
	for off := 0; off < len(m.ColIdx); off += slabElems {
		end := min(off+slabElems, len(m.ColIdx))
		chunk := slab[:4*(end-off)]
		if _, err := io.ReadFull(br, chunk); err != nil {
			return nil, fmt.Errorf("sparse: short column indices: %w", err)
		}
		crc.Write(chunk)
		for i := off; i < end; i++ {
			m.ColIdx[i] = int32(binary.LittleEndian.Uint32(chunk[4*(i-off):]))
		}
	}
	for off := 0; off < len(m.Val); off += slabElems {
		end := min(off+slabElems, len(m.Val))
		chunk := slab[:8*(end-off)]
		if _, err := io.ReadFull(br, chunk); err != nil {
			return nil, fmt.Errorf("sparse: short values: %w", err)
		}
		crc.Write(chunk)
		for i := off; i < end; i++ {
			m.Val[i] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[8*(i-off):]))
		}
	}
	want := crc.Sum32()
	crcBytes := make([]byte, 4)
	if _, err := io.ReadFull(br, crcBytes); err != nil {
		return nil, fmt.Errorf("sparse: missing CRS checksum: %w", err)
	}
	got := binary.LittleEndian.Uint32(crcBytes)
	if got != want {
		return nil, fmt.Errorf("sparse: CRS checksum mismatch: file=%08x computed=%08x", got, want)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("sparse: invalid CRS payload: %w", err)
	}
	return m, nil
}

// WriteCRSFile writes m to path atomically (via a temp file + rename).
func WriteCRSFile(path string, m *CSR) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteCRS(f, m); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadCRSFile reads a binary CRS matrix from path.
func ReadCRSFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := ReadCRS(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// ReadCRSHeader reads only the shape of a CRS file, without its payload.
func ReadCRSHeader(path string) (rows, cols int, nnz int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	hdr := make([]byte, HeaderBytes)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, 0, 0, fmt.Errorf("%s: short CRS header: %w", path, err)
	}
	if m := string(hdr[:8]); m != crsMagic && m != crsMagicV2 {
		return 0, 0, 0, fmt.Errorf("%s: bad CRS magic %q", path, hdr[:8])
	}
	rows = int(binary.LittleEndian.Uint64(hdr[8:]))
	cols = int(binary.LittleEndian.Uint64(hdr[16:]))
	nnz = int64(binary.LittleEndian.Uint64(hdr[24:]))
	return rows, cols, nnz, nil
}
