package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// stripesCoverRows asserts the invariants every caller of nnzBalancedStripes
// relies on: monotone boundaries from 0 to Rows, exactly workers stripes.
func stripesCoverRows(t *testing.T, a *CSR, workers int) []int {
	t.Helper()
	bounds := nnzBalancedStripes(a, workers)
	if len(bounds) != workers+1 {
		t.Fatalf("nnzBalancedStripes(%d workers): %d bounds, want %d", workers, len(bounds), workers+1)
	}
	if bounds[0] != 0 || bounds[workers] != a.Rows {
		t.Fatalf("bounds span [%d,%d], want [0,%d]", bounds[0], bounds[workers], a.Rows)
	}
	for w := 0; w < workers; w++ {
		if bounds[w] > bounds[w+1] {
			t.Fatalf("bounds not monotone at %d: %v", w, bounds)
		}
	}
	return bounds
}

func TestNnzBalancedStripesEmptyRows(t *testing.T) {
	// Rows 0..3 empty, all nnz in rows 4..7, rows 8..9 empty again.
	var ts []Triplet
	for i := 4; i < 8; i++ {
		for j := 0; j < 5; j++ {
			ts = append(ts, Triplet{Row: i, Col: j, Val: 1})
		}
	}
	a, err := FromTriplets(10, 10, ts)
	if err != nil {
		t.Fatal(err)
	}
	bounds := stripesCoverRows(t, a, 4)
	// Every stored entry must land in exactly one stripe; leading empty rows
	// must not push any boundary past a row holding data it skips.
	covered := int64(0)
	for w := 0; w < 4; w++ {
		covered += int64(a.RowPtr[bounds[w+1]] - a.RowPtr[bounds[w]])
	}
	if covered != a.NNZ() {
		t.Fatalf("stripes cover %d nnz, matrix has %d", covered, a.NNZ())
	}
}

func TestNnzBalancedStripesMoreWorkersThanRows(t *testing.T) {
	a, err := FromTriplets(3, 3, []Triplet{{0, 0, 1}, {1, 1, 1}, {2, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// More stripes than rows: extras must collapse to empty stripes, not
	// read past Rows.
	stripesCoverRows(t, a, 8)
}

func TestNnzBalancedStripesDominatingRow(t *testing.T) {
	// One row holds almost all entries; balanced stripes cannot split a row,
	// so the dominating row's stripe absorbs the skew and the remaining
	// boundaries must still be valid.
	var ts []Triplet
	for j := 0; j < 100; j++ {
		ts = append(ts, Triplet{Row: 2, Col: j % 6, Val: float64(j)})
	}
	ts = append(ts, Triplet{Row: 0, Col: 0, Val: 1}, Triplet{Row: 5, Col: 5, Val: 1})
	a, err := FromTriplets(6, 6, ts)
	if err != nil {
		t.Fatal(err)
	}
	bounds := stripesCoverRows(t, a, 3)
	// Row 2 must fall inside exactly one stripe.
	owners := 0
	for w := 0; w < 3; w++ {
		if bounds[w] <= 2 && 2 < bounds[w+1] {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("dominating row owned by %d stripes, want 1 (bounds %v)", owners, bounds)
	}
}

func TestNnzBalancedStripesEmptyMatrix(t *testing.T) {
	a, err := FromTriplets(4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	stripesCoverRows(t, a, 3)
}

// TestMulVecParallelFuzzEquivalence fuzzes random matrices (including
// pathological shapes) and checks MulVecParallel against MulVec bit-for-bit:
// striping only partitions rows, so per-row summation order is identical and
// the results must be exactly equal, not merely close.
func TestMulVecParallelFuzzEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(64)
		cols := 1 + rng.Intn(64)
		density := rng.Float64() * 0.3
		var ts []Triplet
		for i := 0; i < rows; i++ {
			if trial%7 == 0 && i%2 == 0 {
				continue // alternating empty rows
			}
			for j := 0; j < cols; j++ {
				if rng.Float64() < density {
					ts = append(ts, Triplet{Row: i, Col: j, Val: rng.NormFloat64()})
				}
			}
		}
		a, err := FromTriplets(rows, cols, ts)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, rows)
		MulVec(a, x, want)
		for _, workers := range []int{1, 2, 3, 4, rows + 3} {
			got := make([]float64, rows)
			for i := range got {
				got[i] = math.NaN() // catch unwritten rows
			}
			MulVecParallel(a, x, got, workers)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("trial %d workers %d row %d: got %v want %v", trial, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// BenchmarkMulVecParallel tracks the parallel kernel's per-call overhead
// (stripe computation, goroutine fan-out) alongside its throughput.
func BenchmarkMulVecParallel(b *testing.B) {
	m, err := GapMatrix(GapGenConfig{Rows: 4096, Cols: 4096, D: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = float64(i%17) * 0.25
	}
	b.SetBytes(m.Bytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulVecParallel(m, x, y, 4)
	}
}
