package sparse

import (
	"fmt"
	"sync"

	"dooc/internal/obs"
)

// This file is the persistent kernel layer behind the engine's computing
// filters: a striped worker pool that parks between multiplies instead of
// spawning goroutines per call, an instruction-parallel CRS traversal, a
// cache-blocked traversal for matrices whose input vector outgrows L2, and
// fused SpMV+AXPY+dot kernels for the iterative solvers.
//
// Everything here is constrained by bit-identity: the distributed SpMV path
// is validated by hashing its iterates, so a kernel may change the memory
// schedule and the instruction schedule but never the floating-point
// summation order of any row. Three rules follow:
//
//   - each row's products are folded left-to-right in ascending k (multiple
//     accumulators per row are forbidden);
//   - every kernel uses the same `s += Val[k] * x[ColIdx[k]]` expression
//     shape as the reference MulVec, so any fused-multiply-add contraction
//     the compiler performs applies identically everywhere;
//   - reductions across rows (the fused dot) stay one sequential pass in
//     ascending index order — per-stripe partial dots would re-associate the
//     sum.
//
// Row interleaving is the legal instruction-level win: ILPRows rows advance
// together, each with its own dependency chain, so the ~4-cycle latency of
// a chained scalar add no longer bounds throughput — but every chain is
// still one row folded in its own order.

// colTileFloats is the column-tile width (in float64 entries of x) of the
// cache-blocked CRS traversal: 32Ki entries = 256 KiB, sized so the active
// slice of x stays resident in a typical per-core L2 while every row of the
// stripe streams through it. A var so tests can force tiling on small
// matrices.
var colTileFloats = 32 << 10

// blockedMinRowNNZ gates the tiled traversal: below ~4 stored entries per
// row the per-tile cursor sweep costs more than the locality it buys.
const blockedMinRowNNZ = 4

// useBlockedTraversal reports whether the cache-blocked path pays off: the
// input vector must outgrow one tile and rows must be dense enough to visit
// most tiles.
func useBlockedTraversal(a *CSR) bool {
	return a.Cols > colTileFloats && a.Rows > 0 && a.NNZ() >= int64(a.Rows)*blockedMinRowNNZ
}

// Pool is a persistent striped worker pool for the CRS kernels. A Pool with
// W workers runs each kernel as W nnz-balanced row stripes: W-1 helper
// goroutines park on a condition variable between calls (no per-call
// spawning) and the dispatching goroutine claims stripes alongside them. A
// nil Pool, or a Pool built with workers <= 1, runs every kernel inline
// with zero synchronization — the hot configuration for one computing
// filter per node.
//
// A Pool is safe for concurrent use: concurrent kernel calls serialize on
// an internal dispatch lock (the engine gives each computing filter its own
// Pool, so dispatch never contends in practice).
type Pool struct {
	helpers int // parked worker goroutines beyond the dispatcher

	// dispatchMu serializes dispatchers: one kernel call owns the stripe
	// state and scratch below at a time.
	dispatchMu sync.Mutex

	mu        sync.Mutex
	work      *sync.Cond // helpers park here between jobs
	idle      *sync.Cond // the dispatcher waits here for stripe completion
	job       func(stripe int)
	stripes   int
	next      int
	remaining int
	closed    bool

	// Reused dispatch scratch (guarded by dispatchMu; tileCur[s] is owned by
	// stripe s while a job runs).
	bounds  []int
	tileCur [][]int64

	// Optional observability hooks (nil counters are no-ops): Fused counts
	// fused-kernel invocations, Blocked and Scalar the dispatches taking the
	// cache-blocked vs the row-serial traversal.
	Fused   *obs.Counter
	Blocked *obs.Counter
	Scalar  *obs.Counter
}

// NewPool starts a pool of `workers` stripe workers (the dispatcher
// included); workers <= 1 yields an inline pool with no goroutines.
func NewPool(workers int) *Pool {
	p := &Pool{}
	p.work = sync.NewCond(&p.mu)
	p.idle = sync.NewCond(&p.mu)
	if workers > 1 {
		p.helpers = workers - 1
		for i := 0; i < p.helpers; i++ {
			go p.helper()
		}
	}
	return p
}

// Workers reports the stripe width (1 for a nil pool: the inline path).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.helpers + 1
}

// Close releases the helper goroutines. Safe on a nil pool and idempotent;
// the pool must be idle (no kernel call in flight).
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.work.Broadcast()
}

// helper is one parked stripe worker.
func (p *Pool) helper() {
	p.mu.Lock()
	for {
		if p.closed {
			p.mu.Unlock()
			return
		}
		if p.job != nil && p.next < p.stripes {
			s := p.next
			p.next++
			job := p.job
			p.mu.Unlock()
			job(s)
			p.mu.Lock()
			p.remaining--
			if p.remaining == 0 {
				p.idle.Signal()
			}
			continue
		}
		p.work.Wait()
	}
}

// runStripes executes job(0..stripes-1) across the pool and returns when
// every stripe is done. The dispatcher claims stripes too, so a helper
// stall never idles the calling goroutine. Caller must hold dispatchMu.
func (p *Pool) runStripes(stripes int, job func(int)) {
	if p == nil || p.helpers == 0 || stripes <= 1 {
		for s := 0; s < stripes; s++ {
			job(s)
		}
		return
	}
	p.mu.Lock()
	p.job = job
	p.stripes = stripes
	p.next = 0
	p.remaining = stripes
	p.mu.Unlock()
	p.work.Broadcast()
	for {
		p.mu.Lock()
		s := -1
		if p.next < p.stripes {
			s = p.next
			p.next++
		}
		p.mu.Unlock()
		if s < 0 {
			break
		}
		job(s)
		p.mu.Lock()
		p.remaining--
		p.mu.Unlock()
	}
	p.mu.Lock()
	for p.remaining > 0 {
		p.idle.Wait()
	}
	p.job = nil
	p.mu.Unlock()
}

// MulVec computes y = A*x across the pool's stripes. Bit-identical to the
// sequential MulVec: rows are independent, so striping cannot reorder any
// row's fold.
func (p *Pool) MulVec(a *CSR, x, y []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("sparse: Pool.MulVec shapes: A %dx%d, x %d, y %d", a.Rows, a.Cols, len(x), len(y)))
	}
	p.mulVec(a, x, y)
}

// mulVec dispatches the traversal without re-checking shapes (fused kernels
// validate once).
func (p *Pool) mulVec(a *CSR, x, y []float64) {
	blocked := useBlockedTraversal(a)
	workers := 1
	if p != nil {
		workers = p.helpers + 1
		if blocked {
			p.Blocked.Inc()
		} else {
			p.Scalar.Inc()
		}
	}
	if p == nil {
		if blocked {
			mulVecRowsBlocked(a, x, y, 0, a.Rows, make([]int64, a.Rows))
		} else {
			mulVecRows(a, x, y, 0, a.Rows)
		}
		return
	}
	if workers <= 1 || a.Rows < 2*workers {
		if blocked {
			p.dispatchMu.Lock()
			p.growTiles(1)
			p.stripeBlocked(a, x, y, 0, a.Rows, 0)
			p.dispatchMu.Unlock()
		} else {
			mulVecRows(a, x, y, 0, a.Rows)
		}
		return
	}
	p.dispatchMu.Lock()
	p.bounds = nnzBalancedStripesInto(p.bounds, a, workers)
	bounds := p.bounds
	if blocked {
		p.growTiles(workers)
	}
	p.runStripes(workers, func(s int) {
		lo, hi := bounds[s], bounds[s+1]
		if lo >= hi {
			return
		}
		if blocked {
			p.stripeBlocked(a, x, y[lo:hi], lo, hi, s)
		} else {
			mulVecRows(a, x, y[lo:hi], lo, hi)
		}
	})
	p.dispatchMu.Unlock()
}

// growTiles ensures one cursor-scratch slot per stripe. Caller holds
// dispatchMu.
func (p *Pool) growTiles(stripes int) {
	for len(p.tileCur) < stripes {
		p.tileCur = append(p.tileCur, nil)
	}
}

// stripeBlocked runs the tiled traversal over one stripe with the stripe's
// reusable cursor scratch.
func (p *Pool) stripeBlocked(a *CSR, x, y []float64, lo, hi, s int) {
	cur := p.tileCur[s]
	if cap(cur) < hi-lo {
		cur = make([]int64, hi-lo)
		p.tileCur[s] = cur
	}
	mulVecRowsBlocked(a, x, y, lo, hi, cur[:hi-lo])
}

// MulVecDot computes y = A*x and returns the inner product y·x in one
// kernel call; A must be square. Bit-identical to MulVec followed by
// Dot(y, x): the SpMV stripes are row-independent and the reduction is one
// sequential pass in ascending index order over the just-written (still
// cache-hot) y — per-stripe partial dots would re-associate the sum and are
// deliberately not used.
func (p *Pool) MulVecDot(a *CSR, x, y []float64) float64 {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("sparse: MulVecDot shapes: A %dx%d, x %d, y %d", a.Rows, a.Cols, len(x), len(y)))
	}
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("sparse: MulVecDot needs a square matrix, got %dx%d", a.Rows, a.Cols))
	}
	if p != nil {
		p.Fused.Inc()
	}
	p.mulVec(a, x, y)
	return Dot(y, x)
}

// MulVecAxpyDot runs the Lanczos three-term update as one kernel:
//
//	y = A*x
//	alpha = y·x
//	y -= alpha*x;  if prev != nil, y -= beta*prev
//
// returning alpha. The two AXPYs are applied in a single striped pass over
// y while it is cache-hot, instead of re-streaming the vectors once per
// update. Each element receives exactly the operations of the composed
// sparse.Axpy(-alpha, x, y) then sparse.Axpy(-beta, prev, y) sequence, in
// the same order, so the fusion is bit-identical to the separate passes.
func (p *Pool) MulVecAxpyDot(a *CSR, x, prev []float64, beta float64, y []float64) float64 {
	if prev != nil && len(prev) != len(y) {
		panic(fmt.Sprintf("sparse: MulVecAxpyDot prev length %d, y %d", len(prev), len(y)))
	}
	alpha := p.MulVecDot(a, x, y)
	na, nb := -alpha, -beta
	n := len(y)
	seg := func(lo, hi int) {
		if prev == nil {
			for i := lo; i < hi; i++ {
				y[i] += na * x[i]
			}
			return
		}
		for i := lo; i < hi; i++ {
			y[i] += na * x[i]
			y[i] += nb * prev[i]
		}
	}
	workers := 1
	if p != nil {
		workers = p.helpers + 1
	}
	if workers <= 1 || n < 2*workers {
		seg(0, n)
		return alpha
	}
	p.dispatchMu.Lock()
	p.runStripes(workers, func(s int) {
		seg(n*s/workers, n*(s+1)/workers)
	})
	p.dispatchMu.Unlock()
	return alpha
}

// MulVecDot is the package-level fused y = A*x, y·x kernel on the inline
// (nil-pool) path.
func MulVecDot(a *CSR, x, y []float64) float64 {
	return (*Pool)(nil).MulVecDot(a, x, y)
}

// MulVecAxpyDot is the package-level fused Lanczos update on the inline
// (nil-pool) path; see Pool.MulVecAxpyDot.
func MulVecAxpyDot(a *CSR, x, prev []float64, beta float64, y []float64) float64 {
	return (*Pool)(nil).MulVecAxpyDot(a, x, prev, beta, y)
}

// MulVecRows computes rows [lo, hi) of A*x into y (length hi-lo), each row
// bit-identical to MulVec — the kernel behind the engine's split
// multiply-part tasks.
func MulVecRows(a *CSR, x, y []float64, lo, hi int) {
	if lo < 0 || hi > a.Rows || lo > hi || len(x) != a.Cols || len(y) != hi-lo {
		panic(fmt.Sprintf("sparse: MulVecRows shapes: A %dx%d, rows [%d,%d), x %d, y %d",
			a.Rows, a.Cols, lo, hi, len(x), len(y)))
	}
	mulVecRows(a, x, y, lo, hi)
}

// ilpRows is the interleave width of the row-serial kernel: four rows
// advance together, each folding its own products left-to-right, which
// breaks the single-accumulator dependency chain without touching any
// row's summation order.
const ilpRows = 4

// mulVecRows computes rows [lo, hi) of A*x into y (indexed from 0, i.e.
// y[i-lo] = row i). The common prefix of each 4-row group runs interleaved;
// the ragged tails finish per row.
func mulVecRows(a *CSR, x, y []float64, lo, hi int) {
	rp, ci, vs := a.RowPtr, a.ColIdx, a.Val
	i := lo
	for ; i+ilpRows <= hi; i += ilpRows {
		k0, k1, k2, k3 := rp[i], rp[i+1], rp[i+2], rp[i+3]
		e0, e1, e2, e3 := rp[i+1], rp[i+2], rp[i+3], rp[i+4]
		var s0, s1, s2, s3 float64
		n := e0 - k0
		if m := e1 - k1; m < n {
			n = m
		}
		if m := e2 - k2; m < n {
			n = m
		}
		if m := e3 - k3; m < n {
			n = m
		}
		for ; n > 0; n-- {
			s0 += vs[k0] * x[ci[k0]]
			s1 += vs[k1] * x[ci[k1]]
			s2 += vs[k2] * x[ci[k2]]
			s3 += vs[k3] * x[ci[k3]]
			k0++
			k1++
			k2++
			k3++
		}
		for ; k0 < e0; k0++ {
			s0 += vs[k0] * x[ci[k0]]
		}
		for ; k1 < e1; k1++ {
			s1 += vs[k1] * x[ci[k1]]
		}
		for ; k2 < e2; k2++ {
			s2 += vs[k2] * x[ci[k2]]
		}
		for ; k3 < e3; k3++ {
			s3 += vs[k3] * x[ci[k3]]
		}
		o := i - lo
		y[o] = s0
		y[o+1] = s1
		y[o+2] = s2
		y[o+3] = s3
	}
	for ; i < hi; i++ {
		var s float64
		for k, e := rp[i], rp[i+1]; k < e; k++ {
			s += vs[k] * x[ci[k]]
		}
		y[i-lo] = s
	}
}

// mulVecRowsBlocked computes rows [lo, hi) of A*x into y (indexed from 0)
// with the column-tiled traversal: one tile's slice of x stays
// cache-resident while every row of the stripe advances through it, cur
// holding each row's position between tiles. ColIdx is strictly increasing
// within a row, so visiting tiles in ascending column order folds each
// row's products in exactly MulVec's ascending-k order — tiling changes the
// memory schedule, never the arithmetic.
func mulVecRowsBlocked(a *CSR, x, y []float64, lo, hi int, cur []int64) {
	rp, ci, vs := a.RowPtr, a.ColIdx, a.Val
	for r := lo; r < hi; r++ {
		cur[r-lo] = rp[r]
		y[r-lo] = 0
	}
	for c0 := 0; c0 < a.Cols; c0 += colTileFloats {
		cEnd := c0 + colTileFloats
		if cEnd > a.Cols {
			cEnd = a.Cols
		}
		ce := int32(cEnd)
		done := true
		for r := lo; r < hi; r++ {
			k := cur[r-lo]
			e := rp[r+1]
			if k >= e {
				continue
			}
			s := y[r-lo]
			for k < e && ci[k] < ce {
				s += vs[k] * x[ci[k]]
				k++
			}
			y[r-lo] = s
			cur[r-lo] = k
			if k < e {
				done = false
			}
		}
		if done {
			break
		}
	}
}
