package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 20)
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			return false
		}
		got, err := ReadMatrixMarket(&buf)
		if err != nil {
			return false
		}
		if got.Rows != m.Rows || got.Cols != m.Cols || got.NNZ() != m.NNZ() {
			return false
		}
		for i := range m.Val {
			if got.Val[i] != m.Val[i] || got.ColIdx[i] != m.ColIdx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixMarketSymmetricExpansion(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 4
1 1 2.0
2 1 -1.0
3 2 0.5
3 3 4.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 6 { // 2 diagonal + 2 mirrored pairs
		t.Fatalf("nnz = %d, want 6", m.NNZ())
	}
	if m.At(0, 1) != -1 || m.At(1, 0) != -1 {
		t.Fatal("symmetric expansion missing")
	}
	if !m.IsSymmetric(0) {
		t.Fatal("not symmetric after expansion")
	}
}

func TestMatrixMarketSkewSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 || m.At(0, 1) != -3 {
		t.Fatalf("skew expansion wrong: %v %v", m.At(1, 0), m.At(0, 1))
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 3 2
1 3
2 1
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 2) != 1 || m.At(1, 0) != 1 {
		t.Fatal("pattern values should be 1")
	}
}

func TestMatrixMarketIntegerField(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate integer general
2 2 1
1 2 7
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 7 {
		t.Fatalf("At(0,1) = %v", m.At(0, 1))
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad banner":     "hello world\n1 1 1\n1 1 1\n",
		"array format":   "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"complex field":  "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad size":       "%%MatrixMarket matrix coordinate real general\nnope\n",
		"short entries":  "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 5\n",
		"out of range":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 5\n",
		"bad value":      "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 x\n",
		"zero dimension": "%%MatrixMarket matrix coordinate real general\n0 2 0\n",
	}
	for name, src := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMatrixMarketFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/m.mtx"
	rng := rand.New(rand.NewSource(4))
	m := randomCSR(rng, 15)
	if err := WriteMatrixMarketFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarketFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != m.NNZ() {
		t.Fatalf("nnz = %d, want %d", got.NNZ(), m.NNZ())
	}
	if _, err := ReadMatrixMarketFile(dir + "/missing.mtx"); err == nil {
		t.Fatal("missing file accepted")
	}
}
