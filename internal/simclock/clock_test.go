package simclock

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", c.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	c := New()
	var order []int
	c.At(3, func() { order = append(order, 3) })
	c.At(1, func() { order = append(order, 1) })
	c.At(2, func() { order = append(order, 2) })
	c.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if c.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", c.Now())
	}
}

func TestEqualTimeEventsFireInScheduleOrder(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(5, func() { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO at equal times)", i, v, i)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	c := New()
	var at Time
	c.At(10, func() {
		c.After(5, func() { at = c.Now() })
	})
	c.Run()
	if at != 15 {
		t.Fatalf("nested After fired at %v, want 15", at)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	c := New()
	fired := false
	h := c.At(1, func() { fired = true })
	h.Cancel()
	c.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	// Double cancel is a no-op.
	h.Cancel()
}

func TestSchedulingInPastPanics(t *testing.T) {
	c := New()
	c.At(10, func() {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	c.At(5, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	c.After(-1, func() {})
}

func TestRunUntilAdvancesClock(t *testing.T) {
	c := New()
	fired := 0
	c.At(1, func() { fired++ })
	c.At(10, func() { fired++ })
	c.RunUntil(5)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if c.Now() != 5 {
		t.Fatalf("Now() = %v, want 5", c.Now())
	}
	c.Run()
	if fired != 2 || c.Now() != 10 {
		t.Fatalf("after Run: fired=%d now=%v, want 2 and 10", fired, c.Now())
	}
}

func TestEventsScheduledDuringRunFire(t *testing.T) {
	c := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			c.After(1, recurse)
		}
	}
	c.After(1, recurse)
	c.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if c.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", c.Now())
	}
}

func TestSingleFlowCompletionTime(t *testing.T) {
	c := New()
	e := NewEngine(c)
	r := e.NewResource("disk", 100) // 100 units/s
	var done Time
	e.StartFlow("xfer", 500, []*Resource{r}, func(at Time) { done = at })
	c.Run()
	if math.Abs(float64(done-5)) > 1e-9 {
		t.Fatalf("completion at %v, want 5", done)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	c := New()
	e := NewEngine(c)
	r := e.NewResource("link", 10)
	var d1, d2 Time
	e.StartFlow("a", 100, []*Resource{r}, func(at Time) { d1 = at })
	e.StartFlow("b", 100, []*Resource{r}, func(at Time) { d2 = at })
	c.Run()
	// Each gets 5 units/s -> both finish at t=20.
	if math.Abs(float64(d1-20)) > 1e-9 || math.Abs(float64(d2-20)) > 1e-9 {
		t.Fatalf("completions %v %v, want 20 20", d1, d2)
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	c := New()
	e := NewEngine(c)
	r := e.NewResource("link", 10)
	var dShort, dLong Time
	e.StartFlow("long", 150, []*Resource{r}, func(at Time) { dLong = at })
	e.StartFlow("short", 50, []*Resource{r}, func(at Time) { dShort = at })
	c.Run()
	// Share 5/5 until short finishes at t=10 (50 units at 5/s); long then has
	// 100 left at 10/s -> finishes at t=20.
	if math.Abs(float64(dShort-10)) > 1e-9 {
		t.Fatalf("short done at %v, want 10", dShort)
	}
	if math.Abs(float64(dLong-20)) > 1e-9 {
		t.Fatalf("long done at %v, want 20", dLong)
	}
}

func TestBottleneckAcrossTwoResources(t *testing.T) {
	c := New()
	e := NewEngine(c)
	wide := e.NewResource("gpfs", 100)
	narrow := e.NewResource("nic", 10)
	var done Time
	e.StartFlow("xfer", 100, []*Resource{wide, narrow}, func(at Time) { done = at })
	c.Run()
	if math.Abs(float64(done-10)) > 1e-9 {
		t.Fatalf("done at %v, want 10 (bottleneck on nic)", done)
	}
}

func TestMaxMinFairnessClassic(t *testing.T) {
	// Classic max-min example: flows A (r1 only), B (r1+r2), C (r2 only).
	// r1 cap 10, r2 cap 4. B is bottlenecked on r2: B and C each get 2.
	// A then gets the rest of r1: 8.
	c := New()
	e := NewEngine(c)
	r1 := e.NewResource("r1", 10)
	r2 := e.NewResource("r2", 4)
	fa := e.StartFlow("A", 1e9, []*Resource{r1}, nil)
	fb := e.StartFlow("B", 1e9, []*Resource{r1, r2}, nil)
	fc := e.StartFlow("C", 1e9, []*Resource{r2}, nil)
	if math.Abs(fa.Rate()-8) > 1e-9 {
		t.Errorf("A rate = %v, want 8", fa.Rate())
	}
	if math.Abs(fb.Rate()-2) > 1e-9 {
		t.Errorf("B rate = %v, want 2", fb.Rate())
	}
	if math.Abs(fc.Rate()-2) > 1e-9 {
		t.Errorf("C rate = %v, want 2", fc.Rate())
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := New()
	e := NewEngine(c)
	r := e.NewResource("r", 7)
	for i := 0; i < 13; i++ {
		e.StartFlow("f", 100, []*Resource{r}, nil)
	}
	sum := 0.0
	for _, f := range e.flows {
		sum += f.Rate()
	}
	if sum > 7+1e-9 {
		t.Fatalf("allocated %v > capacity 7", sum)
	}
	if math.Abs(r.Utilization()-1) > 1e-9 {
		t.Fatalf("utilization = %v, want 1", r.Utilization())
	}
}

func TestZeroAmountFlowCompletesImmediately(t *testing.T) {
	c := New()
	e := NewEngine(c)
	r := e.NewResource("r", 1)
	var done bool
	var at Time = -1
	c.At(3, func() {
		e.StartFlow("zero", 0, []*Resource{r}, func(t Time) { done = true; at = t })
	})
	c.Run()
	if !done || at != 3 {
		t.Fatalf("zero flow done=%v at=%v, want true at 3", done, at)
	}
}

func TestCancelFlowSuppressesCallback(t *testing.T) {
	c := New()
	e := NewEngine(c)
	r := e.NewResource("r", 10)
	fired := false
	f := e.StartFlow("x", 100, []*Resource{r}, func(Time) { fired = true })
	c.At(1, func() { e.CancelFlow(f) })
	c.Run()
	if fired {
		t.Fatal("canceled flow fired its callback")
	}
	if !f.Finished() {
		t.Fatal("canceled flow not marked finished")
	}
}

func TestCancelFreesCapacityForOthers(t *testing.T) {
	c := New()
	e := NewEngine(c)
	r := e.NewResource("r", 10)
	var done Time
	f1 := e.StartFlow("victim", 1000, []*Resource{r}, nil)
	e.StartFlow("survivor", 100, []*Resource{r}, func(at Time) { done = at })
	c.At(2, func() { e.CancelFlow(f1) })
	c.Run()
	// survivor: 2s at 5/s = 10 done, 90 left at 10/s = 9s more -> t=11.
	if math.Abs(float64(done-11)) > 1e-9 {
		t.Fatalf("survivor done at %v, want 11", done)
	}
}

// TestFlowConservationProperty: total virtual time to drain N flows on a
// single resource equals total work / capacity regardless of flow sizes
// (work conservation of max-min sharing).
func TestFlowConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New()
		e := NewEngine(c)
		cap := 1 + rng.Float64()*99
		r := e.NewResource("r", cap)
		n := 1 + rng.Intn(20)
		total := 0.0
		var last Time
		for i := 0; i < n; i++ {
			amt := 1 + rng.Float64()*1000
			total += amt
			e.StartFlow("f", amt, []*Resource{r}, func(at Time) {
				if at > last {
					last = at
				}
			})
		}
		c.Run()
		want := total / cap
		return math.Abs(float64(last)-want) < 1e-6*want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestStaggeredArrivalsConservation: flows arriving at random times on one
// resource still finish no later than (arrival span + total/capacity) and the
// resource is never over-allocated at reallocation points.
func TestStaggeredArrivalsConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New()
		e := NewEngine(c)
		r := e.NewResource("r", 10)
		n := 1 + rng.Intn(15)
		var finished int
		total := 0.0
		maxArrival := 0.0
		for i := 0; i < n; i++ {
			at := rng.Float64() * 5
			amt := 1 + rng.Float64()*100
			total += amt
			if at > maxArrival {
				maxArrival = at
			}
			c.At(Time(at), func() {
				e.StartFlow("f", amt, []*Resource{r}, func(Time) { finished++ })
			})
		}
		c.Run()
		if finished != n {
			return false
		}
		// All work done by upper bound.
		return float64(c.Now()) <= maxArrival+total/10+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceValidation(t *testing.T) {
	c := New()
	e := NewEngine(c)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive capacity")
		}
	}()
	e.NewResource("bad", 0)
}

func TestNegativeFlowAmountPanics(t *testing.T) {
	c := New()
	e := NewEngine(c)
	r := e.NewResource("r", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative amount")
		}
	}()
	e.StartFlow("bad", -1, []*Resource{r}, nil)
}

func TestCrossEngineResourcePanics(t *testing.T) {
	c := New()
	e1 := NewEngine(c)
	e2 := NewEngine(c)
	r := e1.NewResource("r", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic using resource from another engine")
		}
	}()
	e2.StartFlow("bad", 1, []*Resource{r}, nil)
}

func TestActiveFlowsSorted(t *testing.T) {
	c := New()
	e := NewEngine(c)
	r := e.NewResource("r", 1)
	e.StartFlow("zz", 10, []*Resource{r}, nil)
	e.StartFlow("aa", 10, []*Resource{r}, nil)
	got := e.ActiveFlows()
	if len(got) != 2 || got[0] != "aa" || got[1] != "zz" {
		t.Fatalf("ActiveFlows = %v", got)
	}
}
