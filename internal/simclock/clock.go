// Package simclock provides a deterministic discrete-event virtual clock and
// a flow-level, max-min fair-shared resource model.
//
// The clock advances only when events fire; there is no wall-clock dependency,
// which makes large-scale performance experiments (terabyte transfers, hours
// of simulated machine time) reproducible and instantaneous to run.
//
// Resources model bandwidth-like capacities (disk throughput, NIC links, an
// aggregate parallel-filesystem cap, CPU flop rates). A Flow consumes one or
// more resources simultaneously; its instantaneous rate is the max-min fair
// share across every resource it traverses, recomputed whenever any flow
// starts or finishes. This is the standard flow-level approximation used to
// study transfer-bound systems, and it is the regime the DOoC paper's
// out-of-core SpMV operates in.
package simclock

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual time in seconds.
type Time float64

// event is a scheduled callback. Events with equal times fire in scheduling
// order (seq) so runs are fully deterministic.
type event struct {
	at       Time
	seq      int64
	fn       func()
	canceled bool
	index    int // heap index, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Clock is a discrete-event simulator. The zero value is not usable; call New.
type Clock struct {
	now    Time
	events eventHeap
	seq    int64
}

// New returns a clock positioned at virtual time zero with no pending events.
func New() *Clock {
	return &Clock{}
}

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Pending reports the number of scheduled (non-canceled) events.
func (c *Clock) Pending() int {
	n := 0
	for _, e := range c.events {
		if !e.canceled {
			n++
		}
	}
	return n
}

// Handle identifies a scheduled event so it can be canceled.
type Handle struct{ e *event }

// Cancel removes the event from the schedule. Canceling an already-fired or
// already-canceled event is a no-op.
func (h Handle) Cancel() {
	if h.e != nil {
		h.e.canceled = true
	}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (c *Clock) At(t Time, fn func()) Handle {
	if t < c.now {
		panic(fmt.Sprintf("simclock: schedule at %v before now %v", t, c.now))
	}
	e := &event{at: t, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.events, e)
	return Handle{e}
}

// After schedules fn to run d seconds from now.
func (c *Clock) After(d Time, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v", d))
	}
	return c.At(c.now+d, fn)
}

// Step fires the next pending event, advancing the clock to its time.
// It reports whether an event fired.
func (c *Clock) Step() bool {
	for len(c.events) > 0 {
		e := heap.Pop(&c.events).(*event)
		if e.canceled {
			continue
		}
		c.now = e.at
		e.fn()
		return true
	}
	return false
}

// Run fires events until none remain.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil fires events with time <= t, then advances the clock to t.
func (c *Clock) RunUntil(t Time) {
	for len(c.events) > 0 {
		// Peek.
		next := c.events[0]
		if next.canceled {
			heap.Pop(&c.events)
			continue
		}
		if next.at > t {
			break
		}
		c.Step()
	}
	if t > c.now {
		c.now = t
	}
}

// epsilon used when comparing remaining work and rates.
const eps = 1e-9

// almostZero reports whether v is indistinguishable from zero at model scale.
func almostZero(v float64) bool { return math.Abs(v) < eps }
