package simclock

import (
	"fmt"
	"sort"
)

// Resource is a shared capacity (bytes/s, flops/s, messages/s...). Flows that
// traverse a resource divide its capacity max-min fairly.
type Resource struct {
	name     string
	capacity float64
	flows    []*Flow
	eng      *Engine
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the resource's total capacity in units/s.
func (r *Resource) Capacity() float64 { return r.capacity }

// Active returns the number of flows currently traversing the resource.
func (r *Resource) Active() int { return len(r.flows) }

// Utilization returns the fraction of capacity currently allocated, in [0,1].
func (r *Resource) Utilization() float64 {
	if r.capacity == 0 {
		return 0
	}
	sum := 0.0
	for _, f := range r.flows {
		sum += f.rate
	}
	return sum / r.capacity
}

// Flow is a unit of work (a transfer, a compute kernel) that consumes one or
// more resources until `remaining` units have been processed.
type Flow struct {
	label      string
	remaining  float64
	total      float64
	rate       float64
	resources  []*Resource
	onDone     func(t Time)
	eng        *Engine
	lastUpdate Time
	doneEvent  Handle
	finished   bool
	started    Time

	// frozen is scratch state for the max-min computation.
	frozen bool
}

// Label returns the flow's diagnostic label.
func (f *Flow) Label() string { return f.label }

// Rate returns the flow's current allocated rate in units/s.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the amount of work left, as of the last rate change.
func (f *Flow) Remaining() float64 { return f.remaining }

// Finished reports whether the flow has completed.
func (f *Flow) Finished() bool { return f.finished }

// Engine couples a Clock with a set of resources and active flows and keeps
// the max-min fair allocation up to date as flows start and finish.
type Engine struct {
	clock     *Clock
	resources []*Resource
	flows     []*Flow
}

// NewEngine returns an Engine driving flows on the given clock.
func NewEngine(clock *Clock) *Engine {
	return &Engine{clock: clock}
}

// Clock returns the engine's clock.
func (e *Engine) Clock() *Clock { return e.clock }

// NewResource registers a resource with the given capacity (units/s).
// Capacity must be positive.
func (e *Engine) NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("simclock: resource %q capacity %v must be positive", name, capacity))
	}
	r := &Resource{name: name, capacity: capacity, eng: e}
	e.resources = append(e.resources, r)
	return r
}

// StartFlow begins a flow of `amount` units across the given resources.
// onDone (may be nil) fires at the flow's virtual completion time. A flow
// with no resources or zero amount completes after zero simulated seconds
// (via an immediate event, preserving causal ordering).
func (e *Engine) StartFlow(label string, amount float64, resources []*Resource, onDone func(t Time)) *Flow {
	if amount < 0 {
		panic(fmt.Sprintf("simclock: flow %q negative amount %v", label, amount))
	}
	f := &Flow{
		label:      label,
		remaining:  amount,
		total:      amount,
		resources:  append([]*Resource(nil), resources...),
		onDone:     onDone,
		eng:        e,
		lastUpdate: e.clock.Now(),
		started:    e.clock.Now(),
	}
	for _, r := range f.resources {
		if r.eng != e {
			panic(fmt.Sprintf("simclock: flow %q uses resource %q from another engine", label, r.name))
		}
	}
	if almostZero(amount) || len(f.resources) == 0 {
		// Instant completion, but still via the event queue so callbacks
		// observe a consistent ordering.
		f.finished = true
		e.clock.After(0, func() {
			if f.onDone != nil {
				f.onDone(e.clock.Now())
			}
		})
		return f
	}
	e.flows = append(e.flows, f)
	for _, r := range f.resources {
		r.flows = append(r.flows, f)
	}
	e.reallocate()
	return f
}

// CancelFlow aborts a flow without firing its completion callback.
// Progress up to now is accounted; the flow is detached from its resources.
func (e *Engine) CancelFlow(f *Flow) {
	if f.finished {
		return
	}
	e.settle()
	e.detach(f)
	f.finished = true
	e.reallocate()
}

// settle accrues progress on every active flow up to the current time.
func (e *Engine) settle() {
	now := e.clock.Now()
	for _, f := range e.flows {
		dt := float64(now - f.lastUpdate)
		if dt > 0 {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.lastUpdate = now
	}
}

// detach removes f from the engine and resource membership lists.
func (e *Engine) detach(f *Flow) {
	f.doneEvent.Cancel()
	for _, r := range f.resources {
		for i, g := range r.flows {
			if g == f {
				r.flows = append(r.flows[:i], r.flows[i+1:]...)
				break
			}
		}
	}
	for i, g := range e.flows {
		if g == f {
			e.flows = append(e.flows[:i], e.flows[i+1:]...)
			break
		}
	}
}

// reallocate recomputes max-min fair rates for all active flows and
// reschedules completion events. Called whenever flow membership changes.
func (e *Engine) reallocate() {
	e.settle()

	// Progressive filling (max-min fairness): repeatedly find the resource
	// whose per-unfrozen-flow headroom is smallest, freeze its flows at that
	// share, and continue until every flow is frozen.
	for _, f := range e.flows {
		f.frozen = false
		f.rate = 0
	}
	headroom := make(map[*Resource]float64, len(e.resources))
	unfrozen := make(map[*Resource]int, len(e.resources))
	active := 0
	for _, r := range e.resources {
		if len(r.flows) == 0 {
			continue
		}
		headroom[r] = r.capacity
		unfrozen[r] = len(r.flows)
		active++
	}
	remainingFlows := len(e.flows)
	for remainingFlows > 0 {
		var bottleneck *Resource
		best := 0.0
		for _, r := range e.resources {
			n, ok := unfrozen[r]
			if !ok || n == 0 {
				continue
			}
			share := headroom[r] / float64(n)
			if bottleneck == nil || share < best {
				bottleneck = r
				best = share
			}
		}
		if bottleneck == nil {
			// Should not happen: every flow traverses >=1 resource.
			panic("simclock: no bottleneck found with flows remaining")
		}
		for _, f := range bottleneck.flows {
			if f.frozen {
				continue
			}
			f.frozen = true
			f.rate = best
			remainingFlows--
			for _, r := range f.resources {
				if _, ok := unfrozen[r]; ok {
					unfrozen[r]--
					headroom[r] -= best
					if headroom[r] < 0 {
						headroom[r] = 0
					}
				}
			}
		}
		delete(unfrozen, bottleneck)
	}

	// Reschedule completion events.
	now := e.clock.Now()
	for _, f := range e.flows {
		f.doneEvent.Cancel()
		if almostZero(f.remaining) {
			f.doneEvent = e.clock.At(now, e.finisher(f))
			continue
		}
		if almostZero(f.rate) {
			// Starved flow: no completion event until rates change.
			continue
		}
		f.doneEvent = e.clock.At(now+Time(f.remaining/f.rate), e.finisher(f))
	}
}

// finisher returns the completion callback for f.
func (e *Engine) finisher(f *Flow) func() {
	return func() {
		if f.finished {
			return
		}
		e.settle()
		if !almostZero(f.remaining) {
			// Rate changed after scheduling; reallocate rescheduled us, so
			// this event should have been canceled. Guard anyway.
			return
		}
		e.detach(f)
		f.finished = true
		f.rate = 0
		e.reallocate()
		if f.onDone != nil {
			f.onDone(e.clock.Now())
		}
	}
}

// ActiveFlows returns the labels of active flows, sorted, for diagnostics.
func (e *Engine) ActiveFlows() []string {
	out := make([]string, 0, len(e.flows))
	for _, f := range e.flows {
		out = append(out, f.label)
	}
	sort.Strings(out)
	return out
}
