// CGSolve: solve a large sparse symmetric positive-definite linear system
// out-of-core with the Conjugate Gradient method — the paper's stated next
// step ("Developing more linear algebra kernels will lower the bar for the
// application scientists to use our proposed paradigm").
//
// A 2D Poisson problem (5-point Laplacian on a g×g grid, a classic SPD
// system) is staged as a K×K block grid; every CG iteration's matrix
// application runs through the DOoC middleware.
//
//	go run ./examples/cgsolve
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"dooc/internal/core"
	"dooc/internal/solvers"
	"dooc/internal/sparse"
)

// poisson2D builds the 5-point Laplacian on a g×g grid (dimension g²).
func poisson2D(g int) (*sparse.CSR, error) {
	n := g * g
	var ts []sparse.Triplet
	idx := func(i, j int) int { return i*g + j }
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			c := idx(i, j)
			ts = append(ts, sparse.Triplet{Row: c, Col: c, Val: 4})
			if i > 0 {
				ts = append(ts, sparse.Triplet{Row: c, Col: idx(i-1, j), Val: -1})
			}
			if i < g-1 {
				ts = append(ts, sparse.Triplet{Row: c, Col: idx(i+1, j), Val: -1})
			}
			if j > 0 {
				ts = append(ts, sparse.Triplet{Row: c, Col: idx(i, j-1), Val: -1})
			}
			if j < g-1 {
				ts = append(ts, sparse.Triplet{Row: c, Col: idx(i, j+1), Val: -1})
			}
		}
	}
	return sparse.FromTriplets(n, n, ts)
}

func main() {
	log.SetFlags(0)
	const grid = 48 // 2304 unknowns
	a, err := poisson2D(grid)
	if err != nil {
		log.Fatal(err)
	}
	n := a.Rows
	fmt.Printf("2D Poisson system: %d unknowns, %d nonzeros\n", n, a.NNZ())

	root, err := os.MkdirTemp("", "dooc-cg")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	cfg := core.SpMVConfig{Dim: n, K: 4, Iters: 1, Nodes: 2}
	if err := core.StageMatrix(root, a, cfg); err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(core.Options{
		Nodes:          2,
		WorkersPerNode: 2,
		ScratchRoot:    root,
		MemoryBudget:   1 << 21,
		PrefetchWindow: 2,
		Reorder:        true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Right-hand side: a point source in the middle of the domain.
	b := make([]float64, n)
	b[(grid/2)*grid+grid/2] = 1

	op := &core.Operator{Sys: sys, Cfg: cfg}
	x, st, err := solvers.CG(op, b, solvers.CGOptions{Tol: 1e-8, MaxIter: 2000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CG converged=%v after %d iterations (%d out-of-core SpMV programs)\n",
		st.Converged, st.Iterations, op.Calls())
	fmt.Printf("relative residual %.2e\n", st.Residual)

	// In-core verification.
	ax := make([]float64, n)
	sparse.MulVec(a, x, ax)
	worst := 0.0
	for i := range b {
		if d := math.Abs(ax[i] - b[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("in-core check ||Ax-b||_inf = %.2e\n", worst)
	fmt.Printf("potential at the source: %.6f (positive, peaked: %v)\n",
		x[(grid/2)*grid+grid/2], x[(grid/2)*grid+grid/2] > x[0])
}
