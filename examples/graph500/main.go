// Graph500: out-of-core breadth-first search on an R-MAT graph — the
// workload of the paper's Section VI discussion, where a single
// SSD-equipped machine (Leviathan) matched a 6128-core in-memory cluster
// on graph traversal.
//
// The adjacency matrix is generated with the Graph500 R-MAT recipe, staged
// as a K×K grid of CRS blocks, and traversed level by level: each BFS level
// is one DOoC task program (expand tasks over adjacency blocks, merge tasks
// over frontier bitsets), with frontier and visited sets as immutable
// versioned arrays.
//
//	go run ./examples/graph500 [-scale 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dooc/internal/bfs"
	"dooc/internal/core"
)

func main() {
	log.SetFlags(0)
	scale := flag.Int("scale", 10, "R-MAT scale (2^scale vertices)")
	flag.Parse()

	g, err := bfs.RMAT(bfs.Graph500Defaults(*scale))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R-MAT graph: scale %d, %d vertices, %d directed edges\n", *scale, g.Rows, g.NNZ())

	root, err := os.MkdirTemp("", "dooc-g500")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	cfg := core.SpMVConfig{Dim: g.Rows, K: 4, Iters: 1, Nodes: 2, Tag: "g500"}
	if err := core.StageMatrix(root, g, cfg); err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(core.Options{
		Nodes:          2,
		WorkersPerNode: 2,
		ScratchRoot:    root,
		MemoryBudget:   1 << 22,
		PrefetchWindow: 2,
		Reorder:        true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	drv := &bfs.Driver{Sys: sys, Cfg: cfg}
	start := time.Now()
	dist, err := drv.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Level histogram and traversal statistics.
	levels := map[int32]int{}
	reached := 0
	maxLevel := int32(0)
	for _, d := range dist {
		if d == bfs.Unreached {
			continue
		}
		levels[d]++
		reached++
		if d > maxLevel {
			maxLevel = d
		}
	}
	fmt.Printf("reached %d of %d vertices in %d levels (%v)\n", reached, g.Rows, maxLevel+1, elapsed)
	for l := int32(0); l <= maxLevel; l++ {
		fmt.Printf("  level %2d: %6d vertices\n", l, levels[l])
	}
	teps := float64(g.NNZ()) / elapsed.Seconds()
	fmt.Printf("~%.2e traversed edges per second (laptop scale, through the full middleware)\n", teps)

	// Verify against the in-core oracle.
	want, err := bfs.Reference(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i := range want {
		if dist[i] != want[i] {
			log.Fatalf("MISMATCH at vertex %d: %d vs %d", i, dist[i], want[i])
		}
	}
	fmt.Println("verified against in-core BFS: all distances match")
}
