// Pipeline: the filter-stream layer on its own.
//
// DOoC is built on a DataCutter-style dataflow middleware; this example
// uses that layer directly to build a classic three-stage analysis
// pipeline — a reader filter streaming matrix blocks, a replicated worker
// filter computing per-block statistics (transparent-copy data
// parallelism), and a collector filter merging results — placed across a
// two-node cluster with cross-node traffic accounted.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"dooc/internal/datacutter"
	"dooc/internal/simnet"
	"dooc/internal/sparse"
)

type blockStats struct {
	U, V int
	sparse.Stats
}

func main() {
	log.SetFlags(0)
	const dim, k = 2000, 6
	m, err := sparse.GapMatrix(sparse.GapGenConfig{Rows: dim, Cols: dim, D: 5, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	p, err := sparse.NewGridPartition(dim, k)
	if err != nil {
		log.Fatal(err)
	}

	cluster, err := simnet.New(simnet.Config{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}

	layout := datacutter.NewLayout()
	// Reader on node 0: emits one buffer per sub-matrix.
	layout.MustAddFilter("reader", func() datacutter.Filter {
		return datacutter.FilterFunc(func(ctx *datacutter.Context) error {
			for u := 0; u < k; u++ {
				for v := 0; v < k; v++ {
					b, err := sparse.Block(m, p, u, v)
					if err != nil {
						return err
					}
					ctx.Write("blocks", datacutter.Buffer{
						Tag:   fmt.Sprintf("%d,%d", u, v),
						Value: b,
						Bytes: b.Bytes(),
					})
				}
			}
			return nil
		})
	}, datacutter.OnNodes(0))

	// Replicated analyzer: 4 transparent copies spread over both nodes.
	layout.MustAddFilter("analyze", func() datacutter.Filter {
		return datacutter.FilterFunc(func(ctx *datacutter.Context) error {
			for {
				buf, ok := ctx.Read("blocks")
				if !ok {
					return nil
				}
				var u, v int
				fmt.Sscanf(buf.Tag, "%d,%d", &u, &v)
				st := sparse.Summarize(buf.Value.(*sparse.CSR))
				ctx.Write("stats", datacutter.Buffer{Value: blockStats{U: u, V: v, Stats: st}, Bytes: 64})
			}
		})
	}, datacutter.Copies(4), datacutter.OnNodes(0, 1))

	// Collector on node 1.
	var mu sync.Mutex
	var results []blockStats
	layout.MustAddFilter("collect", func() datacutter.Filter {
		return datacutter.FilterFunc(func(ctx *datacutter.Context) error {
			for {
				buf, ok := ctx.Read("stats")
				if !ok {
					return nil
				}
				mu.Lock()
				results = append(results, buf.Value.(blockStats))
				mu.Unlock()
			}
		})
	}, datacutter.OnNodes(1))

	layout.MustConnect("blocks", "reader", "analyze")
	layout.MustConnect("stats", "analyze", "collect")

	rt, err := datacutter.NewRuntime(layout, cluster)
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		log.Fatal(err)
	}

	sort.Slice(results, func(i, j int) bool {
		if results[i].U != results[j].U {
			return results[i].U < results[j].U
		}
		return results[i].V < results[j].V
	})
	var total int64
	fmt.Printf("per-block statistics (%d blocks):\n", len(results))
	for _, r := range results {
		total += r.NNZ
		if r.U == r.V { // print the diagonal as a sample
			fmt.Printf("  A[%d][%d]: %5d nnz, %5.1f avg/row, max %d\n", r.U, r.V, r.NNZ, r.AvgPerRow, r.MaxPerRow)
		}
	}
	fmt.Printf("total nnz across blocks: %d (matrix says %d)\n", total, m.NNZ())
	for _, s := range rt.Stats() {
		fmt.Printf("stream %-7s: %3d buffers, %8d bytes\n", s.Stream, s.Buffers, s.Bytes)
	}
	fmt.Printf("cross-node traffic: %d bytes\n", cluster.TotalNetworkBytes())
}
