// Eigenvalue: the paper's end-to-end scientific workflow at laptop scale.
//
// Build a toy Configuration-Interaction Hamiltonian (the nuclear-structure
// problem of Section II), stage it out-of-core as a K×K grid of CRS blocks,
// and compute its lowest eigenvalues with Lanczos whose every SpMV runs
// through the DOoC middleware — storage leases, affinity placement,
// data-aware local scheduling, prefetching, LRU eviction.
//
//	go run ./examples/eigenvalue
package main

import (
	"fmt"
	"log"
	"os"

	"dooc/internal/ci"
	"dooc/internal/core"
	"dooc/internal/lanczos"
)

func main() {
	log.SetFlags(0)

	// 1. The physics: enumerate the many-body basis and assemble H.
	basisCfg := ci.BasisConfig{A: 3, Nmax: 3, M2: 1}
	basis, err := ci.BuildBasis(basisCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CI basis: A=%d, Nmax=%d, Mj=%d/2 -> D = %d Slater determinants\n",
		basisCfg.A, basisCfg.Nmax, basisCfg.M2, basis.Dim())
	h, err := ci.Hamiltonian(basis, ci.HamiltonianConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Hamiltonian: %d nonzeros (density %.4f), symmetric 2-body structure\n",
		h.NNZ(), float64(h.NNZ())/float64(basis.Dim())/float64(basis.Dim()))

	// 2. Stage out-of-core and start the DOoC system.
	root, err := os.MkdirTemp("", "dooc-eigen")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	cfg := core.SpMVConfig{Dim: basis.Dim(), K: 4, Iters: 1, Nodes: 2}
	if err := core.StageMatrix(root, h, cfg); err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(core.Options{
		Nodes:          2,
		WorkersPerNode: 2,
		ScratchRoot:    root,
		MemoryBudget:   1 << 22, // 4 MiB per node: forces real out-of-core traffic
		PrefetchWindow: 2,
		Reorder:        true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// 3. Lanczos over the out-of-core operator, with the Lanczos basis
	// itself spilled to scratch: neither the matrix nor the Krylov basis
	// stays resident.
	op := &core.Operator{Sys: sys, Cfg: cfg}
	krylov := &core.BasisStore{Store: sys.Store(0), Spill: true}
	steps := 40
	if steps > basis.Dim() {
		steps = basis.Dim()
	}
	res, err := lanczos.Solve(op, lanczos.Options{Steps: steps, Seed: 1, Basis: krylov})
	if err != nil {
		log.Fatal(err)
	}
	defer krylov.Close()
	fmt.Printf("\nLanczos: %d steps, %d out-of-core SpMV programs, %d spilled basis vectors\n",
		res.Steps, op.Calls(), krylov.Len())
	fmt.Println("lowest eigenvalues (energies) and residual estimates:")
	for i, ev := range res.Lowest(5) {
		fmt.Printf("  E%d = %12.6f   (residual ~ %.2e)\n", i, ev, res.Residuals[i])
	}

	var disk int64
	for n := 0; n < sys.Nodes(); n++ {
		disk += sys.Store(n).Stats().BytesReadDisk
	}
	fmt.Printf("\nout-of-core traffic: %.1f MB read from scratch, %.2f MB over the network\n",
		float64(disk)/1e6, float64(sys.Cluster().TotalNetworkBytes())/1e6)
}
