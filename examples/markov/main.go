// Markov: steady state of a large Markov chain by out-of-core power
// iteration — the distributed out-of-core use case of the paper's
// reference [6] (Knottenbelt & Harrison, disk-based solution of large
// Markov models), run on the DOoC middleware.
//
// We build a sparse column-stochastic transition matrix P, stage it as a
// K×K block grid, and iterate x <- P x out-of-core until the iterate
// stabilizes; the fixed point is the stationary distribution.
//
//	go run ./examples/markov
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"dooc/internal/core"
	"dooc/internal/sparse"
)

// transitionMatrix builds a random sparse column-stochastic matrix with a
// uniform restart component (a scrambled PageRank-style chain), guaranteeing
// a unique stationary distribution.
func transitionMatrix(n int, outDegree int, damping float64, seed int64) (*sparse.CSR, error) {
	rng := rand.New(rand.NewSource(seed))
	var ts []sparse.Triplet
	for j := 0; j < n; j++ { // column j: transitions out of state j
		seen := map[int]bool{}
		for len(seen) < outDegree {
			seen[rng.Intn(n)] = true
		}
		w := damping / float64(len(seen))
		for i := range seen {
			ts = append(ts, sparse.Triplet{Row: i, Col: j, Val: w})
		}
	}
	// Restart: (1-damping) uniform mass. Representing the dense restart
	// explicitly would destroy sparsity; instead fold it analytically in
	// the iteration below. Here we return only the sparse part.
	return sparse.FromTriplets(n, n, ts)
}

func main() {
	log.SetFlags(0)
	const (
		n       = 3000
		deg     = 6
		damping = 0.85
		k       = 4
		nodes   = 2
	)
	p, err := transitionMatrix(n, deg, damping, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Markov chain: %d states, %d transitions (plus uniform restart)\n", n, p.NNZ())

	root, err := os.MkdirTemp("", "dooc-markov")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	cfg := core.SpMVConfig{Dim: n, K: k, Iters: 1, Nodes: nodes}
	if err := core.StageMatrix(root, p, cfg); err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(core.Options{
		Nodes:          nodes,
		WorkersPerNode: 2,
		ScratchRoot:    root,
		MemoryBudget:   1 << 22,
		PrefetchWindow: 2,
		Reorder:        true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Power iteration with analytic restart: x <- damping-part (out-of-core
	// SpMV) + (1-damping)/n.
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	op := &core.Operator{Sys: sys, Cfg: cfg}
	const maxIters = 60
	var iters int
	for iters = 1; iters <= maxIters; iters++ {
		y, err := op.Apply(x)
		if err != nil {
			log.Fatal(err)
		}
		restart := (1 - damping) / float64(n)
		delta := 0.0
		for i := range y {
			y[i] += restart
			delta += math.Abs(y[i] - x[i])
		}
		x = y
		if delta < 1e-10 {
			break
		}
	}

	// Report: the stationary distribution must sum to 1 and match an
	// in-core verification iteration.
	sum := 0.0
	maxP, argmax := 0.0, 0
	for i, v := range x {
		sum += v
		if v > maxP {
			maxP, argmax = v, i
		}
	}
	fmt.Printf("converged after %d out-of-core iterations; sum(pi) = %.9f\n", iters, sum)
	fmt.Printf("most probable state: %d with pi = %.6g\n", argmax, maxP)

	verify := make([]float64, n)
	sparse.MulVec(p, x, verify)
	worst := 0.0
	for i := range verify {
		verify[i] += (1 - damping) / float64(n)
		if d := math.Abs(verify[i] - x[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("fixed-point residual ||P*pi - pi||_inf = %.2e (in-core check)\n", worst)
}
