// Gantt: reproduce the paper's Fig. 5 — the two execution plans of a
// three-node iterated SpMV where each node's memory holds one sub-matrix at
// a time. The "regular" plan reloads every sub-matrix every iteration; the
// data-aware local scheduler discovers the "back and forth" plan that
// traverses sub-matrices in reverse on alternate iterations, saving one
// load per node per iteration.
//
//	go run ./examples/gantt [-iters 3]
package main

import (
	"flag"
	"fmt"
	"strings"

	"dooc/internal/dag"
	"dooc/internal/scheduler"
	"dooc/internal/spmv"
)

func main() {
	iters := flag.Int("iters", 2, "iterations to schedule")
	flag.Parse()

	cfg := spmv.ProgramConfig{K: 3, Iters: *iters, SubBytes: 1000, VecBytes: 8}
	costs := scheduler.Costs{
		LoadSecondsPerByte: 0.003, // a load takes 3 time units
		RunSeconds:         func(*dag.Task) float64 { return 1 },
	}
	for _, mode := range []struct {
		title   string
		reorder bool
	}{
		{"(a) Regular", false},
		{"(b) Back and forth", true},
	} {
		g, err := spmv.Graph(cfg)
		if err != nil {
			panic(err)
		}
		plan, err := scheduler.Simulate(g, spmv.RowAssignment(cfg), cfg.K, cfg.SubBytes, mode.reorder, costs)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s — makespan %.0f, loads per node %v\n", mode.title, plan.Makespan, plan.LoadsPerNode)
		printGantt(plan, cfg.K)
		fmt.Println()
	}
	fmt.Println("legend: #### = sub-matrix load (bold in the paper), mUV = multiply, rU = reduce")
}

// printGantt renders a time-scaled text Gantt, one lane per node.
func printGantt(plan *scheduler.Plan, nodes int) {
	scale := 3.0 // columns per time unit
	for n := 0; n < nodes; n++ {
		var sb strings.Builder
		cursor := 0
		put := func(upTo int, s string) {
			for cursor < upTo {
				pad := upTo - cursor
				if len(s) > pad {
					s = s[:pad]
				}
				if s == "" {
					sb.WriteByte(' ')
					cursor++
					continue
				}
				sb.WriteString(s)
				cursor += len(s)
				s = ""
			}
		}
		for _, op := range plan.NodeOps(n) {
			start := int(op.Start * scale)
			end := int(op.End * scale)
			put(start, "")
			switch op.Kind {
			case scheduler.OpLoad:
				put(end, strings.Repeat("#", end-start))
			case scheduler.OpRun:
				put(end, cell(op.Task))
			}
		}
		fmt.Printf("  P%d |%s|\n", n+1, sb.String())
	}
}

// cell abbreviates task IDs: mult:t:u:v -> mUV, reduce:t:u -> rU.
func cell(id string) string {
	parts := strings.Split(id, ":")
	switch parts[0] {
	case "mult":
		return "m" + parts[2] + parts[3]
	case "reduce":
		return "r" + parts[2]
	default:
		return id
	}
}
