// Quickstart: the smallest complete DOoC program.
//
// It creates a 3-node system, declares immutable arrays, submits a task
// program whose dependencies are derived from the data each task reads and
// writes, and lets the hierarchical scheduler place and order execution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dooc/internal/core"
	"dooc/internal/dag"
	"dooc/internal/storage"
)

func main() {
	log.SetFlags(0)
	sys, err := core.NewSystem(core.Options{
		Nodes:          3,
		WorkersPerNode: 2,
		Reorder:        true,
		PrefetchWindow: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Immutable arrays: written once, then read anywhere in the cluster.
	const n = 1000
	for _, name := range []string{"input", "squares", "total"} {
		size := int64(8 * n)
		if name == "total" {
			size = 8
		}
		if err := sys.Store(0).Create(name, size, size); err != nil {
			log.Fatal(err)
		}
	}

	// The task program. Dependencies are not declared — they are derived:
	// "square" reads what "fill" writes, "sum" reads what "square" writes.
	tasks := []*dag.Task{
		{ID: "fill", Kind: "fill", Outputs: []dag.Ref{{Array: "input", Bytes: 8 * n}}},
		{ID: "square", Kind: "square",
			Inputs:  []dag.Ref{{Array: "input", Bytes: 8 * n}},
			Outputs: []dag.Ref{{Array: "squares", Bytes: 8 * n}}},
		{ID: "sum", Kind: "sum",
			Inputs:  []dag.Ref{{Array: "squares", Bytes: 8 * n}},
			Outputs: []dag.Ref{{Array: "total", Bytes: 8}}},
	}

	executors := map[string]core.Executor{
		"fill": func(ctx *core.ExecContext) error {
			w, err := ctx.Store.RequestBlock("input", 0, storage.PermWrite)
			if err != nil {
				return err
			}
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = float64(i + 1)
			}
			storage.PutFloat64s(w, vals)
			w.Release()
			return nil
		},
		"square": func(ctx *core.ExecContext) error {
			r, err := ctx.Store.RequestBlock("input", 0, storage.PermRead)
			if err != nil {
				return err
			}
			vals := storage.GetFloat64s(r)
			r.Release()
			for i, v := range vals {
				vals[i] = v * v
			}
			w, err := ctx.Store.RequestBlock("squares", 0, storage.PermWrite)
			if err != nil {
				return err
			}
			storage.PutFloat64s(w, vals)
			w.Release()
			return nil
		},
		"sum": func(ctx *core.ExecContext) error {
			r, err := ctx.Store.RequestBlock("squares", 0, storage.PermRead)
			if err != nil {
				return err
			}
			total := 0.0
			for _, v := range storage.GetFloat64s(r) {
				total += v
			}
			r.Release()
			w, err := ctx.Store.RequestBlock("total", 0, storage.PermWrite)
			if err != nil {
				return err
			}
			storage.PutFloat64s(w, []float64{total})
			w.Release()
			return nil
		},
	}

	stats, err := sys.Run(core.RunSpec{Tasks: tasks, Executors: executors})
	if err != nil {
		log.Fatal(err)
	}

	raw, err := sys.Store(2).ReadAll("total") // read from any node
	if err != nil {
		log.Fatal(err)
	}
	got := storage.DecodeFloat64s(raw)[0]
	want := float64(n) * (n + 1) * (2*n + 1) / 6 // sum of squares 1..n
	fmt.Printf("sum of squares 1..%d = %.0f (expected %.0f)\n", n, got, want)
	fmt.Printf("ran %d tasks in %v across %d nodes\n", len(tasks), stats.Wall, sys.Nodes())
	for _, ev := range stats.Events {
		fmt.Printf("  %-8s on node %d (%v)\n", ev.Task, ev.Node, ev.End.Sub(ev.Start))
	}
}
