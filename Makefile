# DOoC reproduction — convenience targets.

GO ?= go

.PHONY: all build test race bench bench-smoke debugtag hotpath perf-gate vet fmt fuzz figures experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/ ./internal/storage/ ./internal/core/ ./internal/datacutter/ ./internal/simnet/ ./internal/mfdn/ ./internal/bfs/ ./internal/remote/ ./internal/scheduler/ ./internal/faults/ ./internal/compress/ ./internal/jobs/ ./internal/jobstore/ ./internal/cluster/ ./internal/proxy/ ./internal/sparse/ ./internal/lanczos/

# Short fuzz pass over every codec round trip and the frame decoder.
fuzz:
	for target in FuzzRawRoundTrip FuzzDeltaVarint64RoundTrip FuzzDeltaVarint32RoundTrip FuzzFloatShuffleRoundTrip FuzzLZDecode FuzzDecodeFrame; do \
		$(GO) test -run "^$$target$$" -fuzz "^$$target$$" -fuzztime 10s ./internal/compress/ || exit 1; \
	done

bench:
	$(GO) test -bench=. -benchmem ./...

# One-iteration pass over every benchmark — catches benchmark bit-rot in CI
# without paying for stable timings. allocs/op is still reported and is the
# number the zero-copy hot path work tracks.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem ./...

# View-lifetime enforcement build: the doocdebug tag turns zero-copy views
# into tracked copies poisoned on lease release, so use-after-release reads
# fail loudly.
debugtag:
	$(GO) test -tags doocdebug ./internal/storage/ ./internal/core/

# Re-measure the steady-state allocation hot path and refresh the committed
# artifact (compare against the previous BENCH_hotpath.json before and after
# touching the data path).
hotpath:
	$(GO) run ./cmd/doocbench -exp hotpath -bench-out BENCH_hotpath.json

# Perf regression gate: re-run the hot path and fail if the result hash
# drifts from the committed BENCH_hotpath.json or allocations regress past
# the budget. Wall-clock is reported but deliberately not gated (CI runners
# have no stable clock); bit-identity and allocation count are deterministic.
perf-gate:
	$(GO) run ./cmd/doocbench -exp hotpath -bench-out /tmp/BENCH_hotpath.json -gate BENCH_hotpath.json -gate-allocs 1100

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Regenerate the figure artifacts committed under figures/.
figures:
	$(GO) run ./cmd/doocplot -out figures

# Print every table and figure, paper vs reproduction.
experiments:
	$(GO) run ./cmd/doocbench -exp all

clean:
	$(GO) clean ./...
