# DOoC reproduction — convenience targets.

GO ?= go

.PHONY: all build test race bench vet fmt figures experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/ ./internal/storage/ ./internal/core/ ./internal/datacutter/ ./internal/simnet/ ./internal/mfdn/ ./internal/bfs/ ./internal/remote/ ./internal/scheduler/ ./internal/faults/

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Regenerate the figure artifacts committed under figures/.
figures:
	$(GO) run ./cmd/doocplot -out figures

# Print every table and figure, paper vs reproduction.
experiments:
	$(GO) run ./cmd/doocbench -exp all

clean:
	$(GO) clean ./...
