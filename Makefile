# DOoC reproduction — convenience targets.

GO ?= go

.PHONY: all build test race bench vet fmt fuzz figures experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/ ./internal/storage/ ./internal/core/ ./internal/datacutter/ ./internal/simnet/ ./internal/mfdn/ ./internal/bfs/ ./internal/remote/ ./internal/scheduler/ ./internal/faults/ ./internal/compress/ ./internal/jobs/

# Short fuzz pass over every codec round trip and the frame decoder.
fuzz:
	for target in FuzzRawRoundTrip FuzzDeltaVarint64RoundTrip FuzzDeltaVarint32RoundTrip FuzzFloatShuffleRoundTrip FuzzLZDecode FuzzDecodeFrame; do \
		$(GO) test -run "^$$target$$" -fuzz "^$$target$$" -fuzztime 10s ./internal/compress/ || exit 1; \
	done

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Regenerate the figure artifacts committed under figures/.
figures:
	$(GO) run ./cmd/doocplot -out figures

# Print every table and figure, paper vs reproduction.
experiments:
	$(GO) run ./cmd/doocbench -exp all

clean:
	$(GO) clean ./...
